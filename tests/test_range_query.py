"""Tests for range-query answering (Algorithm 4), including the paper's
Example 6."""

import random

import pytest

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.core.range_query import (
    RangeQuery,
    range_query,
    range_query_naive,
    range_query_raw,
)
from repro.errors import QueryError
from tests.conftest import approx_equal, make_random_table


class TestRangeQuerySpec:
    def test_single_values_normalized(self):
        q = RangeQuery((1, ALL, [2, 3]), 3)
        assert q.positions == ((1,), ALL, (2, 3))

    def test_duplicates_removed_and_sorted(self):
        q = RangeQuery(([3, 1, 3],), 1)
        assert q.positions == ((1, 3),)

    def test_wrong_arity_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery((1, 2), 3)

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            RangeQuery(([],), 1)

    def test_n_points(self):
        q = RangeQuery(([1, 2], ALL, [3, 4, 5]), 3)
        assert q.n_points() == 6

    def test_iter_points(self):
        q = RangeQuery(([1, 2], ALL), 2)
        assert list(q.iter_points()) == [(1, ALL), (2, ALL)]


class TestExample6:
    def test_paper_range_query(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        result = range_query_raw(
            tree, sales_table, (["S1", "S2", "S3"], ["P1", "P3"], "f")
        )
        # Only (S2, P1, f) exists in the range; S3 and P3 prune subtrees.
        assert result == {("S2", "P1", "f"): 9.0}

    def test_all_candidates_unknown_returns_empty(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        assert range_query_raw(tree, sales_table, (["S9"], "*", "*")) == {}


class TestAgainstNaivePlan:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_point_query_expansion(self, seed):
        table = make_random_table(seed)
        tree = build_qctree(table, ("sum", "m"))
        rng = random.Random(seed)
        for _ in range(5):
            spec = []
            for j in range(table.n_dims):
                roll = rng.random()
                cj = table.cardinality(j)
                if roll < 0.3:
                    spec.append(ALL)
                elif roll < 0.6:
                    spec.append([rng.randrange(cj)])
                else:
                    spec.append(
                        sorted(rng.sample(range(cj), min(cj, rng.randint(1, 3))))
                    )
            smart = range_query(tree, spec)
            naive = range_query_naive(tree, spec)
            assert set(smart) == set(naive)
            for cell in smart:
                assert approx_equal(smart[cell], naive[cell])

    @pytest.mark.parametrize("seed", range(10))
    def test_all_star_spec_returns_root_class_only(self, seed):
        table = make_random_table(seed + 60)
        tree = build_qctree(table, "count")
        result = range_query(tree, (ALL,) * table.n_dims)
        assert list(result) == [(ALL,) * table.n_dims]
        assert result[(ALL,) * table.n_dims] == table.n_rows

    def test_full_domain_range_enumerates_group_by(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        spec = ([0, 1], ALL, ALL)  # both stores
        result = range_query(tree, spec)
        decoded = {sales_table.decode_cell(c): v for c, v in result.items()}
        assert decoded == {("S1", "*", "*"): 9.0, ("S2", "*", "*"): 9.0}

    def test_missing_values_pruned_not_error(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        result = range_query(tree, ([0, 1], [99], ALL))
        assert result == {}


class TestRawSpecTypes:
    """``range_query_raw`` must accept every iterable RangeQuery does —
    a ``range`` object used to fall through to the single-label branch
    and silently match nothing."""

    def test_range_object_behaves_like_list(self, seed=3):
        table = make_random_table(seed, n_dims=3, cardinality=4, n_rows=10)
        tree = build_qctree(table, ("sum", "m"))
        via_range = range_query_raw(tree, table, (range(0, 3), "*", "*"))
        via_list = range_query_raw(tree, table, ([0, 1, 2], "*", "*"))
        assert via_range == via_list
        assert via_range  # the domain prefix is never empty here

    def test_range_object_in_warehouse_spec(self, sales_table):
        from repro.core.warehouse import QCWarehouse

        wh = QCWarehouse(sales_table, aggregate=("avg", "Sale"))
        # Encoded store codes 0..1 == labels S1, S2.
        spec_range = wh.range((["S1", "S2"], "*", "*"))
        assert spec_range == {("S1", "*", "*"): 9.0, ("S2", "*", "*"): 9.0}

    def test_all_unknown_labels_in_one_dim_is_empty(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        assert range_query_raw(
            tree, sales_table, (["S1", "S2"], ["P9", "P10"], "*")
        ) == {}

    def test_partly_unknown_labels_pruned(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        result = range_query_raw(
            tree, sales_table, (["S2", "S9"], "*", ["f", "x"])
        )
        assert result == {("S2", "*", "f"): 9.0}
