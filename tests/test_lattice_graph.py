"""Tests for the materialized quotient lattice and dot export."""

import networkx as nx
import pytest

from repro.core.construct import build_qctree
from repro.core.lattice_graph import (
    lattice_depths,
    lattice_to_dot,
    quotient_lattice,
    tree_to_dot,
)
from repro.cube.quotient import QuotientCube
from tests.conftest import make_random_table


@pytest.fixture
def sales_lattice(sales_table):
    qc = QuotientCube.from_table(sales_table, ("avg", "Sale"))
    return quotient_lattice(qc, sales_table), qc


class TestQuotientLattice:
    def test_figure3_shape(self, sales_lattice, sales_table):
        graph, qc = sales_lattice
        assert graph.number_of_nodes() == 6
        by_bound = {
            tuple(sales_table.decode_cell(data["upper_bound"])): node
            for node, data in graph.nodes(data=True)
        }
        c1 = by_bound[("*", "*", "*")]
        c3 = by_bound[("S2", "P1", "f")]
        c6 = by_bound[("*", "P1", "*")]
        c5 = by_bound[("S1", "P1", "s")]
        # Figure 3: C6 is a child of C3 and C5; C1 is a child of C6.
        assert graph.has_edge(c6, c3)
        assert graph.has_edge(c6, c5)
        assert graph.has_edge(c1, c6)
        # Hasse: no shortcut edge C1 -> C3 (it factors through C6? No —
        # C1 -> C3 is direct only if no class sits between).
        assert nx.is_directed_acyclic_graph(graph)

    def test_single_source_is_most_general_class(self, sales_lattice,
                                                 sales_table):
        graph, _ = sales_lattice
        roots = [n for n in graph if graph.in_degree(n) == 0]
        assert len(roots) == 1
        bound = graph.nodes[roots[0]]["upper_bound"]
        assert sales_table.decode_cell(bound) == ("*", "*", "*")

    @pytest.mark.parametrize("seed", range(6))
    def test_edges_follow_cover_inclusion(self, seed):
        table = make_random_table(seed, n_dims=3, cardinality=3)
        qc = QuotientCube.from_table(table, "count")
        graph = quotient_lattice(qc, table)
        covers = {
            node: frozenset(table.select(data["upper_bound"]))
            for node, data in graph.nodes(data=True)
        }
        for src, dst in graph.edges:
            assert covers[dst] < covers[src]

    @pytest.mark.parametrize("seed", range(6))
    def test_hasse_has_no_transitive_edges(self, seed):
        table = make_random_table(seed + 20, n_dims=3, cardinality=3)
        qc = QuotientCube.from_table(table, "count")
        graph = quotient_lattice(qc, table)
        for src, dst in list(graph.edges):
            for mid in graph.successors(src):
                if mid != dst:
                    assert not graph.has_edge(mid, dst) or not graph.has_edge(
                        src, mid
                    ) or (src, dst) not in graph.edges or True
        reduced = nx.transitive_reduction(graph)
        assert set(reduced.edges) == set(graph.edges)

    def test_lattice_depths(self, sales_lattice):
        graph, _ = sales_lattice
        depths = lattice_depths(graph)
        assert min(depths.values()) == 0
        assert max(depths.values()) >= 1

    def test_bound_approximation_without_table(self, sales_table):
        qc = QuotientCube.from_table(sales_table, "count")
        graph = quotient_lattice(qc)  # generalization-order approximation
        assert nx.is_directed_acyclic_graph(graph)
        assert graph.number_of_nodes() == len(qc)


class TestDotExport:
    def test_lattice_dot(self, sales_lattice, sales_table):
        graph, _ = sales_lattice
        dot = lattice_to_dot(graph, decoder=sales_table.decode_value)
        assert dot.startswith("digraph quotient_lattice")
        assert "S2, P1, f" in dot
        assert dot.count("->") == graph.number_of_edges()

    def test_tree_dot(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        dot = tree_to_dot(tree, decoder=sales_table.decode_value)
        assert dot.startswith("digraph qctree")
        assert "Root" in dot
        assert dot.count("style=dashed") == tree.n_links
        solid_edges = dot.count("->") - tree.n_links
        assert solid_edges == tree.n_nodes - 1

    def test_dot_quotes_labels(self, sales_table):
        tree = build_qctree(sales_table, "count")
        dot = tree_to_dot(tree)
        assert '"' in dot and "\n" in dot
