"""Tests for dimension hierarchies compiled into range queries."""

import pytest

from repro.core.warehouse import QCWarehouse
from repro.cube.hierarchy import (
    Hierarchy,
    HierarchyMember,
    compile_member,
    compile_spec,
    rollup_by_level,
)
from repro.cube.schema import Schema
from repro.errors import QueryError, SchemaError


@pytest.fixture
def time_hierarchy():
    return Hierarchy(
        "day",
        {
            "month": {"d1": "Jan", "d2": "Jan", "d3": "Feb", "d4": "Feb"},
            "quarter": {"d1": "Q1", "d2": "Q1", "d3": "Q1", "d4": "Q1"},
        },
    )


@pytest.fixture
def warehouse():
    schema = Schema(dimensions=("store", "day"), measures=("sales",))
    return QCWarehouse.from_records(
        [
            ("S1", "d1", 10.0),
            ("S1", "d2", 20.0),
            ("S2", "d3", 5.0),
            ("S2", "d4", 7.0),
        ],
        schema,
        aggregate=("sum", "sales"),
    )


class TestHierarchy:
    def test_levels_and_members(self, time_hierarchy):
        assert time_hierarchy.level_names == ("month", "quarter")
        assert time_hierarchy.members("month") == ("Feb", "Jan")
        assert time_hierarchy.members("quarter") == ("Q1",)

    def test_leaves(self, time_hierarchy):
        assert time_hierarchy.leaves("month", "Jan") == {"d1", "d2"}
        assert time_hierarchy.leaves("quarter", "Q1") == {"d1", "d2", "d3", "d4"}

    def test_member_of(self, time_hierarchy):
        assert time_hierarchy.member_of("month", "d3") == "Feb"

    def test_unknown_level_rejected(self, time_hierarchy):
        with pytest.raises(QueryError):
            time_hierarchy.leaves("year", "1999")

    def test_unknown_member_rejected(self, time_hierarchy):
        with pytest.raises(QueryError):
            time_hierarchy.leaves("month", "Mar")

    def test_unknown_leaf_rejected(self, time_hierarchy):
        with pytest.raises(QueryError):
            time_hierarchy.member_of("month", "d99")

    def test_empty_levels_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("x", {})

    def test_inconsistent_leaf_sets_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy("x", {"a": {"l1": "m"}, "b": {"l2": "m"}})

    def test_check_well_formed(self, time_hierarchy):
        time_hierarchy.check_well_formed(["d1", "d2", "d3", "d4"])
        with pytest.raises(SchemaError):
            time_hierarchy.check_well_formed(["d1", "d9"])


class TestCompilation:
    def test_compile_member(self, time_hierarchy):
        entry = HierarchyMember("month", "Jan")
        assert compile_member(time_hierarchy, entry) == ["d1", "d2"]

    def test_compile_spec_mixed(self, time_hierarchy):
        spec = compile_spec(
            ("S1", HierarchyMember("month", "Feb")), {1: time_hierarchy}
        )
        assert spec == ("S1", ["d3", "d4"])

    def test_compile_spec_without_hierarchy_rejected(self, time_hierarchy):
        with pytest.raises(QueryError):
            compile_spec((HierarchyMember("month", "Jan"), "*"), {})


class TestHierarchicalQueries:
    def test_member_range_query(self, warehouse, time_hierarchy):
        spec = compile_spec(
            ("*", HierarchyMember("month", "Jan")), {1: time_hierarchy}
        )
        results = warehouse.range(spec)
        # Point cells keep the queried shape (store stays *); values come
        # from each cell's class (here the (S1, dX) classes).
        assert results == {("*", "d1"): 10.0, ("*", "d2"): 20.0}

    def test_rollup_by_level_month(self, warehouse, time_hierarchy):
        totals = rollup_by_level(warehouse, "day", time_hierarchy, "month")
        assert totals == {"Jan": 30.0, "Feb": 12.0}

    def test_rollup_by_level_quarter(self, warehouse, time_hierarchy):
        totals = rollup_by_level(warehouse, "day", time_hierarchy, "quarter")
        assert totals == {"Q1": 42.0}

    def test_rollup_with_base_constraint(self, warehouse, time_hierarchy):
        totals = rollup_by_level(
            warehouse, "day", time_hierarchy, "month",
            base_spec=("S2", "*"),
        )
        assert totals == {"Feb": 12.0}

    def test_rollup_respects_count_aggregate(self, time_hierarchy):
        schema = Schema(dimensions=("store", "day"), measures=("sales",))
        wh = QCWarehouse.from_records(
            [("S1", "d1", 1.0), ("S1", "d2", 1.0), ("S2", "d2", 1.0)],
            schema, aggregate="count",
        )
        totals = rollup_by_level(wh, "day", time_hierarchy, "month")
        assert totals == {"Jan": 3}
