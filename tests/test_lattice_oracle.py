"""Tests for the brute-force lattice oracle itself (repro.cube.lattice).

The oracle underpins every other correctness test, so its own invariants
get checked directly: closure is a closure operator, enumeration is
complete, convexity holds, and Lemma 1's guarantees are observable.
"""

import pytest

from repro.core.cells import generalizes
from repro.cube.lattice import (
    cell_aggregate,
    closed_cells,
    closure,
    count_nonempty_cells,
    cover_rows,
    drilldown_children,
    full_cube,
    is_convex_partition,
    iter_nonempty_cells,
    quotient_classes,
)
from tests.conftest import all_cells, make_random_table


class TestClosureOperator:
    @pytest.mark.parametrize("seed", range(10))
    def test_extensive(self, seed):
        table = make_random_table(seed)
        for cell in all_cells(table):
            c = closure(table, cell)
            if c is not None:
                assert generalizes(cell, c)

    @pytest.mark.parametrize("seed", range(10))
    def test_idempotent(self, seed):
        table = make_random_table(seed + 10)
        for cell in all_cells(table):
            c = closure(table, cell)
            if c is not None:
                assert closure(table, c) == c

    @pytest.mark.parametrize("seed", range(10))
    def test_monotone(self, seed):
        table = make_random_table(seed + 20, n_dims=3, cardinality=2)
        cells = [c for c in all_cells(table) if closure(table, c) is not None]
        for a in cells[:20]:
            for b in cells[:20]:
                if generalizes(a, b):
                    assert generalizes(closure(table, a), closure(table, b))

    @pytest.mark.parametrize("seed", range(10))
    def test_preserves_cover(self, seed):
        table = make_random_table(seed + 30)
        for cell in all_cells(table):
            c = closure(table, cell)
            if c is not None:
                assert cover_rows(table, c) == cover_rows(table, cell)

    def test_empty_cover_returns_none(self, sales_table):
        assert closure(sales_table, sales_table.encode_cell(("S2", "*", "s"))) is None


class TestEnumeration:
    @pytest.mark.parametrize("seed", range(10))
    def test_nonempty_cells_exact(self, seed):
        table = make_random_table(seed + 40)
        enumerated = set(iter_nonempty_cells(table))
        expected = {
            cell for cell in all_cells(table) if table.select(cell)
        }
        assert enumerated == expected
        assert count_nonempty_cells(table) == len(expected)

    @pytest.mark.parametrize("seed", range(8))
    def test_closed_cells_are_fixed_points(self, seed):
        table = make_random_table(seed + 50)
        for cell in closed_cells(table):
            assert closure(table, cell) == cell

    def test_full_cube_values(self, sales_table):
        cube = full_cube(sales_table, ("avg", "Sale"))
        assert cube[sales_table.encode_cell(("*", "P1", "*"))] == 7.5
        assert len(cube) == 18

    def test_cell_aggregate(self, sales_table):
        cell = sales_table.encode_cell(("S1", "*", "*"))
        assert cell_aggregate(sales_table, ("sum", "Sale"), cell) == 18.0
        missing = sales_table.encode_cell(("S2", "*", "s"))
        assert cell_aggregate(sales_table, "count", missing) is None


class TestQuotientOracle:
    def test_lemma1_unique_upper_bound(self, sales_table):
        for qclass in quotient_classes(sales_table, "count"):
            maximal = [
                c
                for c in qclass.members
                if not any(
                    generalizes(c, d) and c != d for d in qclass.members
                )
            ]
            assert maximal == [qclass.upper_bound]

    def test_lemma1_equal_aggregates_within_class(self, sales_table):
        cube = full_cube(sales_table, ("avg", "Sale"))
        for qclass in quotient_classes(sales_table, ("avg", "Sale")):
            for member in qclass.members:
                assert cube[member] == qclass.value

    @pytest.mark.parametrize("seed", range(5))
    def test_classes_partition_the_cube(self, seed):
        table = make_random_table(seed + 60, n_dims=3, cardinality=3)
        classes = quotient_classes(table, "count")
        seen = set()
        for qclass in classes:
            for member in qclass.members:
                assert member not in seen
                seen.add(member)
        assert seen == set(iter_nonempty_cells(table))

    def test_convexity_detector_accepts_cover_partition(self, sales_table):
        assert is_convex_partition(
            sales_table, quotient_classes(sales_table, "count")
        )

    def test_convexity_detector_rejects_hole(self, sales_table):
        """The paper's §2.1 example: value-only grouping is not convex."""
        cube = full_cube(sales_table, ("avg", "Sale"))

        class FakeClass:
            def __init__(self, members):
                self.members = members

        by_value = {}
        for cell, value in cube.items():
            by_value.setdefault(value, []).append(cell)
        classes = [FakeClass(m) for m in by_value.values()]
        assert not is_convex_partition(sales_table, classes)


class TestDrilldownChildren:
    def test_paper_example(self, sales_table):
        cell = sales_table.encode_cell(("S2", "*", "*"))
        children = {
            sales_table.decode_cell(c)
            for c in drilldown_children(sales_table, cell)
        }
        assert children == {("S2", "P1", "*"), ("S2", "*", "f")}

    def test_base_tuple_has_no_children(self, sales_table):
        cell = sales_table.encode_cell(("S2", "P1", "f"))
        assert list(drilldown_children(sales_table, cell)) == []
