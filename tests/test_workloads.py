"""Tests for the query-workload generators."""

import pytest

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.core.point_query import point_query
from repro.data.synthetic import zipf_table
from repro.data.workloads import (
    iceberg_thresholds,
    point_query_workload,
    range_query_workload,
)
from repro.errors import QueryError


@pytest.fixture(scope="module")
def table():
    return zipf_table(300, 4, 8, seed=0)


class TestPointWorkload:
    def test_count_and_arity(self, table):
        queries = point_query_workload(table, 50, seed=1)
        assert len(queries) == 50
        assert all(len(q) == table.n_dims for q in queries)

    def test_deterministic(self, table):
        assert point_query_workload(table, 20, seed=1) == point_query_workload(
            table, 20, seed=1
        )

    def test_values_in_domain(self, table):
        for query in point_query_workload(table, 50, seed=2):
            for j, v in enumerate(query):
                assert v is ALL or 0 <= v < table.cardinality(j)

    def test_mostly_hits(self, table):
        tree = build_qctree(table, "count")
        queries = point_query_workload(table, 100, seed=3,
                                       miss_probability=0.0)
        hits = sum(1 for q in queries if point_query(tree, q) is not None)
        assert hits == 100

    def test_misses_generated(self, table):
        tree = build_qctree(table, "count")
        queries = point_query_workload(table, 200, seed=4,
                                       miss_probability=1.0)
        misses = sum(1 for q in queries if point_query(tree, q) is None)
        assert misses > 0

    def test_empty_table_rejected(self, table):
        empty = table.without_rows(range(table.n_rows))
        with pytest.raises(QueryError):
            point_query_workload(empty, 10)


class TestRangeWorkload:
    def test_range_dimension_counts(self, table):
        queries = range_query_workload(table, 40, seed=1, min_range_dims=1,
                                       max_range_dims=3)
        for spec in queries:
            ranges = [e for e in spec if isinstance(e, list)]
            assert 1 <= len(ranges) <= 3

    def test_values_per_range(self, table):
        queries = range_query_workload(table, 30, seed=2, values_per_range=3)
        for spec in queries:
            for entry in spec:
                if isinstance(entry, list):
                    assert len(entry) == 3
                    assert entry == sorted(set(entry))

    def test_full_domain_ranges(self, table):
        queries = range_query_workload(table, 10, seed=3,
                                       values_per_range="full")
        for spec in queries:
            for j, entry in enumerate(spec):
                if isinstance(entry, list):
                    assert entry == list(range(table.cardinality(j)))

    def test_invalid_bounds_rejected(self, table):
        with pytest.raises(QueryError):
            range_query_workload(table, 5, min_range_dims=0)
        with pytest.raises(QueryError):
            range_query_workload(table, 5, max_range_dims=99)

    def test_deterministic(self, table):
        assert range_query_workload(table, 10, seed=7) == range_query_workload(
            table, 10, seed=7
        )


class TestThresholds:
    def test_quantiles(self):
        values = list(range(100))
        assert iceberg_thresholds(values, (0.5, 0.9)) == [50, 90]

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            iceberg_thresholds([])

    def test_extremes_clamped(self):
        assert iceberg_thresholds([1, 2, 3], (0.0, 1.0)) == [1, 3]
