"""Tests for the BUC cube computation (full and iceberg)."""

import pytest

from repro.core.cells import ALL
from repro.cube.buc import buc, buc_cell_count
from repro.cube.lattice import full_cube, iter_nonempty_cells
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from repro.errors import QueryError
from tests.conftest import approx_equal, make_random_table


class TestFullCube:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_oracle(self, seed):
        table = make_random_table(seed)
        got = buc(table, ("sum", "m"))
        expected = full_cube(table, ("sum", "m"))
        assert set(got) == set(expected)
        for cell in expected:
            assert approx_equal(got[cell], expected[cell])

    @pytest.mark.parametrize("seed", range(10))
    def test_cell_count(self, seed):
        table = make_random_table(seed + 20)
        assert buc_cell_count(table) == sum(
            1 for _ in iter_nonempty_cells(table)
        )

    def test_empty_table(self):
        schema = Schema(dimensions=("A",), measures=("m",))
        table = BaseTable.from_encoded([], [], schema, cardinalities=[2])
        assert buc(table, "count") == {}
        assert buc_cell_count(table) == 0

    def test_paper_example_cube_size(self, sales_table):
        # Figure 2(a): 15 aggregate cells plus the 3 base tuples.
        assert buc_cell_count(sales_table) == 18

    def test_streaming_callback(self, sales_table):
        seen = []
        result = buc(sales_table, "count",
                     on_cell=lambda cell, value: seen.append((cell, value)))
        assert result == {}  # streamed, not materialized
        assert len(seen) == 18


class TestIceberg:
    def test_min_support_prunes(self, sales_table):
        cube2 = buc(sales_table, "count", min_support=2)
        # Only cells covering at least two tuples survive.
        decoded = {sales_table.decode_cell(c): v for c, v in cube2.items()}
        assert decoded == {
            ("*", "*", "*"): 3,
            ("S1", "*", "*"): 2,
            ("S1", "*", "s"): 2,
            ("*", "P1", "*"): 2,
            ("*", "*", "s"): 2,
        }

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("min_support", [2, 3])
    def test_equals_postfiltered_full_cube(self, seed, min_support):
        table = make_random_table(seed + 50)
        got = buc(table, "count", min_support=min_support)
        expected = {
            cell: value
            for cell, value in full_cube(table, "count").items()
            if value >= min_support
        }
        assert got == expected

    def test_min_support_above_table_size(self, sales_table):
        assert buc(sales_table, "count", min_support=99) == {}

    def test_invalid_min_support(self, sales_table):
        with pytest.raises(QueryError):
            buc(sales_table, "count", min_support=0)


class TestCubeGrowth:
    def test_cube_is_larger_than_quotient(self):
        from repro.cube.quotient import QCTable

        table = make_random_table(3, n_dims=4, cardinality=3, n_rows=10)
        assert buc_cell_count(table) > len(QCTable.from_table(table))

    def test_all_cell_always_present(self, sales_table):
        cube = buc(sales_table, "count")
        assert (ALL, ALL, ALL) in cube
