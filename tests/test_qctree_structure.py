"""Tests for the QC-tree structure and its primitives (repro.core.qctree)."""

import pytest

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.core.qctree import QCTree
from repro.cube.aggregates import make_aggregate
from repro.errors import QueryError
from tests.conftest import make_random_table


@pytest.fixture
def empty_tree():
    return QCTree(3, make_aggregate("count"), dim_names=("A", "B", "C"))


class TestPrimitives:
    def test_new_tree_has_root_only(self, empty_tree):
        assert empty_tree.n_nodes == 1
        assert empty_tree.n_links == 0
        assert empty_tree.n_classes == 0

    def test_zero_dims_rejected(self):
        with pytest.raises(QueryError):
            QCTree(0, make_aggregate("count"))

    def test_insert_path_creates_nodes(self, empty_tree):
        node = empty_tree.insert_path((1, ALL, 2))
        assert empty_tree.n_nodes == 3
        assert empty_tree.upper_bound_of(node) == (1, ALL, 2)

    def test_insert_path_shares_prefixes(self, empty_tree):
        empty_tree.insert_path((1, 2, 3))
        before = empty_tree.n_nodes
        empty_tree.insert_path((1, 2, 4))
        assert empty_tree.n_nodes == before + 1

    def test_insert_path_idempotent(self, empty_tree):
        a = empty_tree.insert_path((1, ALL, 2))
        b = empty_tree.insert_path((1, ALL, 2))
        assert a == b

    def test_find_path(self, empty_tree):
        node = empty_tree.insert_path((ALL, 5, ALL))
        assert empty_tree.find_path((ALL, 5, ALL)) == node
        assert empty_tree.find_path((ALL, 6, ALL)) is None

    def test_path_prefix_node(self, empty_tree):
        empty_tree.insert_path((1, 2, 3))
        prefix = empty_tree.path_prefix_node((1, 2, 3), 1)
        assert empty_tree.upper_bound_of(prefix) == (1, 2, ALL)
        assert empty_tree.path_prefix_node((1, 2, 3), -1) == empty_tree.root

    def test_child_and_last_dim(self, empty_tree):
        empty_tree.insert_path((1, ALL, 2))
        empty_tree.insert_path((ALL, 7, ALL))
        assert empty_tree.child(empty_tree.root, 0, 1) is not None
        assert empty_tree.child(empty_tree.root, 0, 9) is None
        assert empty_tree.last_child_dim(empty_tree.root) == 1
        assert set(empty_tree.children_in_dim(empty_tree.root, 1)) == {7}


class TestLinks:
    def test_add_and_iterate(self, empty_tree):
        a = empty_tree.insert_path((1, ALL, ALL))
        b = empty_tree.insert_path((ALL, 2, ALL))
        empty_tree.add_link(a, 1, 2, b)
        assert list(empty_tree.iter_links()) == [(a, 1, 2, b)]
        assert empty_tree.link_target(a, 1, 2) == b

    def test_edge_coincidence_skipped(self, empty_tree):
        parent = empty_tree.insert_path((1, ALL, ALL))
        child = empty_tree.insert_path((1, 2, ALL))
        empty_tree.add_link(parent, 1, 2, child)
        assert empty_tree.n_links == 0

    def test_remove_link(self, empty_tree):
        a = empty_tree.insert_path((1, ALL, ALL))
        b = empty_tree.insert_path((ALL, 2, ALL))
        empty_tree.add_link(a, 1, 2, b)
        empty_tree.remove_link(a, 1, 2)
        assert empty_tree.n_links == 0
        empty_tree.remove_link(a, 1, 2)  # idempotent


class TestStateAndPrune:
    def test_set_state_makes_class(self, empty_tree):
        node = empty_tree.insert_path((1, 2, ALL))
        empty_tree.set_state(node, 5)
        assert empty_tree.n_classes == 1
        assert empty_tree.value_at(node) == 5

    def test_value_at_non_class_is_none(self, empty_tree):
        node = empty_tree.insert_path((1, 2, ALL))
        assert empty_tree.value_at(node) is None

    def test_prune_removes_dead_path(self, empty_tree):
        node = empty_tree.insert_path((1, 2, 3))
        empty_tree.set_state(node, 1)
        empty_tree.clear_state_and_prune(node)
        assert empty_tree.n_nodes == 1

    def test_prune_stops_at_shared_prefix(self, empty_tree):
        keep = empty_tree.insert_path((1, 2, ALL))
        empty_tree.set_state(keep, 1)
        node = empty_tree.insert_path((1, 2, 3))
        empty_tree.set_state(node, 2)
        empty_tree.clear_state_and_prune(node)
        assert empty_tree.find_path((1, 2, ALL)) == keep
        assert empty_tree.find_path((1, 2, 3)) is None

    def test_prune_respects_incoming_links(self, empty_tree):
        target = empty_tree.insert_path((1, 2, ALL))
        empty_tree.set_state(target, 1)
        src = empty_tree.insert_path((ALL, ALL, 5))
        empty_tree.set_state(src, 2)
        empty_tree.add_link(src, 0, 1, target)
        empty_tree.clear_state_and_prune(target)
        # node kept alive by the incoming link
        assert empty_tree.find_path((1, 2, ALL)) is not None

    def test_freed_ids_are_reused(self, empty_tree):
        node = empty_tree.insert_path((1, 2, 3))
        empty_tree.set_state(node, 1)
        total = len(empty_tree.node_dim)
        empty_tree.clear_state_and_prune(node)
        empty_tree.insert_path((2, ALL, ALL))
        assert len(empty_tree.node_dim) == total  # slot reuse, no growth


class TestComparison:
    def test_signature_ignores_node_ids(self):
        t1 = make_random_table(5)
        a = build_qctree(t1, "count")
        b = build_qctree(t1.subset(list(reversed(range(t1.n_rows)))), "count")
        assert a.signature() == b.signature()

    def test_equivalent_to_tolerates_float_noise(self, sales_table):
        a = build_qctree(sales_table, ("sum", "Sale"))
        b = build_qctree(sales_table, ("sum", "Sale"))
        node = next(b.iter_class_nodes())
        b.set_state(node, b.state[node] + 1e-13)
        assert a.equivalent_to(b)

    def test_equivalent_to_detects_value_change(self, sales_table):
        a = build_qctree(sales_table, ("sum", "Sale"))
        b = build_qctree(sales_table, ("sum", "Sale"))
        node = next(b.iter_class_nodes())
        b.set_state(node, b.state[node] + 1.0)
        assert not a.equivalent_to(b)

    def test_equivalent_to_detects_extra_link(self, sales_table):
        a = build_qctree(sales_table, "count")
        b = build_qctree(sales_table, "count")
        nodes = list(b.iter_class_nodes())
        b.add_link(nodes[0], b.n_dims - 1, 99, nodes[-1])
        assert not a.equivalent_to(b)

    def test_stats_keys(self, sales_table):
        stats = build_qctree(sales_table, "count").stats()
        assert set(stats) == {"nodes", "tree_edges", "links", "classes"}

    def test_dump_mentions_labels(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        text = tree.dump(decoder=sales_table.decode_value)
        assert "Root" in text and "Store=S1" in text and "~~" in text
