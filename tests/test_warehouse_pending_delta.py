"""Warehouse-level batched maintenance: pending-delta accumulation,
empty/duplicate batch hygiene, and recovery-replay parity.

The warehouse keeps the stale frozen view across writes and accumulates
each batch's :class:`~repro.core.maintenance.delta.MaintenanceDelta`
into one pending merge, patched on the next read.  These tests drive
the awkward interleavings: insert and delete batches with no read in
between, a delete that empties a class an earlier *pending* insert
created, batches that must be strict no-ops, and a crash/recover cycle
that must converge on the same serving tree as the live path.
"""

from __future__ import annotations

import pytest

from repro.core.construct import build_qctree
from repro.core.warehouse import QCWarehouse
from repro.cube.schema import Schema
from repro.errors import MaintenanceError
from tests.conftest import all_cells, approx_equal

SCHEMA = Schema(dimensions=("Store", "Product", "Season"),
                measures=("Sale",))
BASE = [
    ("S1", "P1", "s", 6.0),
    ("S1", "P2", "s", 12.0),
    ("S2", "P1", "f", 9.0),
    ("S2", "P2", "f", 4.0),
]


def _warehouse(**kwargs):
    kwargs.setdefault("cache_size", 0)
    return QCWarehouse.from_records(BASE, SCHEMA, aggregate=("sum", "Sale"),
                                    **kwargs)


def _assert_serves_like_rebuild(wh):
    """The (possibly patched) serving state matches a from-scratch
    warehouse over the same final table, for every point cell."""
    reference = QCWarehouse(wh.table, ("sum", "Sale"), cache_size=0)
    assert wh.tree.equivalent_to(
        build_qctree(wh.table, ("sum", "Sale"))
    )
    for cell in all_cells(wh.table):
        raw = wh.table.decode_cell(cell)
        assert approx_equal(wh.point(raw), reference.point(raw)), raw


class TestPendingDeltaAccumulation:
    def test_interleaved_batches_patch_once(self):
        """Insert, delete, and mixed batches with no read in between
        still fold into ONE pending delta and one incremental patch."""
        wh = _warehouse(full_refreeze_ratio=1.0)  # always patch, never rebuild
        wh.view  # compile the initial frozen view
        wh.insert([("S3", "P1", "w", 2.0), ("S3", "P2", "w", 5.0)])
        wh.delete([("S1", "P2", "s", 0.0)])
        wh.maintain(inserts=[("S1", "P3", "f", 8.0)],
                    deletes=[("S3", "P1", "w", 0.0)])
        assert wh._pending_delta is not None  # nothing read yet
        _assert_serves_like_rebuild(wh)
        assert wh._pending_delta is None  # consumed by the single patch
        assert wh.last_refreeze["mode"] in ("patched", "compacted")

    def test_delete_empties_class_created_by_pending_insert(self):
        """A class born in one pending batch and killed by the next must
        vanish cleanly from the patched view (dirty-id overlap case)."""
        wh = _warehouse()
        wh.view
        fresh = ("S9", "P9", "x", 3.0)
        wh.insert([fresh])      # creates brand-new path + class nodes
        wh.delete([fresh])      # prunes them while still pending
        _assert_serves_like_rebuild(wh)
        # Net effect is zero: same classes as an untouched warehouse.
        untouched = _warehouse()
        assert wh.tree.equivalent_to(untouched.tree)

    def test_pending_survives_failed_batch(self):
        """A batch that validates-and-fails must not corrupt the pending
        delta accumulated by earlier successful batches."""
        wh = _warehouse()
        wh.view
        wh.insert([("S4", "P1", "s", 1.0)])
        with pytest.raises(MaintenanceError):
            wh.delete([("missing", "missing", "missing", 0.0)])
        _assert_serves_like_rebuild(wh)

    def test_mixed_batch_is_one_epoch_bump(self):
        wh = _warehouse()
        _, epoch_before = wh.serving_stamp()
        wh.maintain(inserts=[("S5", "P1", "s", 2.0)],
                    deletes=[("S2", "P2", "f", 0.0)])
        _, epoch_after = wh.serving_stamp()
        assert epoch_after == epoch_before + 1
        assert wh.stats()["maintain_batched"] == 1


class TestEmptyAndDuplicateBatches:
    def test_empty_batches_are_true_noops(self, tmp_path):
        """No WAL record, no epoch bump, no cache flush, no tree churn."""
        wh = _warehouse(cache_size=64)
        wal = wh.attach_wal(str(tmp_path / "wh.wal"))
        wh.point(("S1", "*", "*"))  # fill one cache entry
        stamp = wh.serving_stamp()
        lsn = wal.last_lsn
        signature = wh.tree.signature()
        wh.insert([])
        wh.delete([])
        wh.maintain()
        wh.maintain(inserts=[], deletes=[])
        assert wh.serving_stamp() == stamp
        assert wal.last_lsn == lsn
        assert len(wal.records()) == 0
        assert wh.tree.signature() == signature
        hits_before = wh.stats()["query_cache"]["hits"]
        wh.point(("S1", "*", "*"))  # stamp unchanged => still a hit
        assert wh.stats()["query_cache"]["hits"] == hits_before + 1

    def test_duplicate_tuple_insert_batch(self):
        """k copies in one batch contribute k times, like k single calls."""
        record = ("S1", "P1", "s", 6.0)
        batched = _warehouse()
        batched.insert([record, record])
        sequential = _warehouse()
        sequential.insert([record])
        sequential.insert([record])
        assert batched.tree.equivalent_to(sequential.tree)
        _assert_serves_like_rebuild(batched)

    def test_duplicate_tuple_delete_batch(self):
        record = ("S1", "P1", "s", 6.0)
        wh = _warehouse()
        wh.insert([record])  # now two matching rows
        wh.delete([record, record])
        _assert_serves_like_rebuild(wh)
        assert wh.table.n_rows == len(BASE) - 1

    def test_overdraft_duplicate_delete_fails_whole_batch(self):
        """Deleting more copies than exist rejects the batch atomically."""
        wh = _warehouse()
        before = wh.tree.signature()
        with pytest.raises(MaintenanceError):
            wh.delete([("S1", "P1", "s", 0.0)] * 2)  # only one copy exists
        assert wh.tree.signature() == before
        assert wh.table.n_rows == len(BASE)

    def test_modify_is_one_wal_record(self, tmp_path):
        """§3.3 modification == ONE tagged ``maintain`` record and one
        serving-version bump, not a delete/insert pair."""
        wh = _warehouse()
        wal = wh.attach_wal(str(tmp_path / "wh.wal"))
        _, epoch_before = wh.serving_stamp()
        wh.modify([("S1", "P1", "s", 0.0)], [("S1", "P1", "w", 6.0)])
        records = wal.records()
        assert len(records) == 1
        assert records[0].op == "maintain"
        tags = {row[0] for row in records[0].records}
        assert tags == {"-", "+"}
        assert wh.serving_stamp()[1] == epoch_before + 1


class TestRecoveryReplayParity:
    def _paths(self, tmp_path):
        return (str(tmp_path / "tree.qct"), str(tmp_path / "wh.wal"),
                str(tmp_path / "table.csv"))

    def test_recover_replays_mixed_batches_like_live(self, tmp_path):
        """Snapshot + WAL replay of pure AND mixed batches converges on
        the live warehouse's serving tree and answers."""
        tree_path, wal_path, table_path = self._paths(tmp_path)
        live = _warehouse()
        live.attach_wal(wal_path)
        live.checkpoint(tree_path, table_path)
        live.insert([("S3", "P1", "w", 2.0)])
        live.modify([("S2", "P2", "f", 0.0)], [("S2", "P2", "w", 11.0)])
        live.delete([("S1", "P2", "s", 0.0)])

        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        assert recovered.last_recovery["replayed"] == 3
        assert recovered.last_recovery["skipped"] == []
        assert sorted(recovered.table.iter_records()) == \
            sorted(live.table.iter_records())
        assert recovered.tree.equivalent_to(
            build_qctree(live.table, ("sum", "Sale"))
        )
        for cell in all_cells(live.table):
            raw = live.table.decode_cell(cell)
            assert approx_equal(recovered.point(raw), live.point(raw)), raw

    def test_recover_skips_checkpointed_maintain_records(self, tmp_path):
        """A mixed batch folded into a later checkpoint is not replayed."""
        tree_path, wal_path, table_path = self._paths(tmp_path)
        live = _warehouse()
        live.attach_wal(wal_path)
        live.modify([("S1", "P1", "s", 0.0)], [("S1", "P1", "w", 6.0)])
        live.save(tree_path, table_path)  # snapshot includes the batch
        live.insert([("S4", "P4", "s", 1.0)])

        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        assert recovered.last_recovery["replayed"] == 1  # only the insert
        assert sorted(recovered.table.iter_records()) == \
            sorted(live.table.iter_records())
        assert recovered.tree.equivalent_to(
            build_qctree(live.table, ("sum", "Sale"))
        )

    def test_recovered_warehouse_keeps_batching(self, tmp_path):
        """Post-recovery writes keep flowing through the batched engine
        (same WAL, counters fresh, mixed batches still one record)."""
        tree_path, wal_path, table_path = self._paths(tmp_path)
        live = _warehouse()
        live.attach_wal(wal_path)
        live.checkpoint(tree_path, table_path)
        live.insert([("S3", "P1", "w", 2.0)])

        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        lsn_before = recovered.wal.last_lsn
        recovered.maintain(inserts=[("S5", "P5", "s", 4.0)],
                           deletes=[("S3", "P1", "w", 0.0)])
        assert recovered.wal.last_lsn == lsn_before + 1
        assert recovered.wal.records()[-1].op == "maintain"
        assert recovered.stats()["maintain_batched"] == 1
        _assert_serves_like_rebuild(recovered)
