"""Health probes, circuit breaker, and client retry policy."""

from __future__ import annotations

import itertools

import pytest

from repro.core.warehouse import QCWarehouse
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    QueryError,
    ServerOverloadedError,
    ServingError,
    WorkerCrashedError,
)
from repro.reliability.faults import InjectedCrash, ServingFaults
from repro.serving import CircuitBreaker, QCServer, RetryPolicy
from repro.serving.health import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def warehouse(sales_table):
    return QCWarehouse(sales_table, aggregate="avg(Sale)")


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        defaults = dict(error_threshold=0.5, min_requests=4,
                        window_s=10.0, cooldown_s=1.0, probes=1)
        defaults.update(kwargs)
        return CircuitBreaker(clock=clock, **defaults)

    def trip(self, breaker):
        for _ in range(2):
            breaker.on_success()
        for _ in range(3):
            breaker.on_failure()

    def test_stays_closed_below_threshold(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(20):
            breaker.on_success()
        breaker.on_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_min_requests_guards_early_errors(self):
        clock = FakeClock()
        breaker = self.make(clock, min_requests=10)
        # 100% errors, but not enough volume to believe the rate.
        for _ in range(9):
            breaker.on_failure()
        assert breaker.state == CLOSED

    def test_opens_at_threshold_and_sheds(self):
        clock = FakeClock()
        breaker = self.make(clock)
        self.trip(breaker)
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.snapshot()["times_opened"] == 1

    def test_half_opens_after_cooldown_with_bounded_probes(self):
        clock = FakeClock()
        breaker = self.make(clock, probes=2)
        self.trip(breaker)
        clock.advance(1.5)
        assert breaker.allow()  # probe 1
        assert breaker.allow()  # probe 2
        assert not breaker.allow()  # probe budget spent
        assert breaker.state == HALF_OPEN

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        self.trip(breaker)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.on_success()
        assert breaker.state == CLOSED
        # The window restarted: old failures cannot re-trip it.
        breaker.on_failure()
        assert breaker.state == CLOSED

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        self.trip(breaker)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.on_failure()
        assert breaker.state == OPEN
        assert breaker.snapshot()["times_opened"] == 2
        assert not breaker.allow()

    def test_discard_releases_probe_slot(self):
        """A probe that produced no outcome (cancelled/shed) must not
        wedge the breaker half-open forever."""
        clock = FakeClock()
        breaker = self.make(clock, probes=1)
        self.trip(breaker)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.on_discard()
        assert breaker.allow()  # slot released, next probe admitted

    def test_window_ages_out_old_errors(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.on_failure()
        clock.advance(11.0)  # tumble the window
        breaker.on_success()
        breaker.on_failure()
        assert breaker.state == CLOSED

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(error_threshold=0.0)


class TestRetryPolicy:
    def test_retries_transient_then_succeeds(self):
        calls = itertools.count()
        sleeps = []

        def flaky():
            if next(calls) < 2:
                raise WorkerCrashedError("boom")
            return 42

        policy = RetryPolicy(max_attempts=4, sleep=sleeps.append)
        assert policy.call(flaky) == 42
        assert len(sleeps) == 2
        assert policy.stats() == {"calls": 1, "retries": 2, "exhausted": 0}

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=3, sleep=lambda s: None)
        attempts = []
        with pytest.raises(ServerOverloadedError):
            policy.call(lambda: attempts.append(1) or (_ for _ in ()).throw(
                ServerOverloadedError("full")))
        assert len(attempts) == 3
        assert policy.stats()["exhausted"] == 1

    def test_non_retryable_raises_immediately(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None)
        attempts = []

        def fatal():
            attempts.append(1)
            raise QueryError("bad request")

        with pytest.raises(QueryError):
            policy.call(fatal)
        assert len(attempts) == 1

    def test_injected_crash_is_never_retried(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None)
        with pytest.raises(InjectedCrash):
            policy.call(lambda: (_ for _ in ()).throw(InjectedCrash("die")))

    def test_deadline_bounds_total_call(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_attempts=100, base_delay_s=1.0, max_delay_s=1.0,
            deadline_s=2.5, sleep=lambda s: clock.advance(max(s, 1.0)),
            clock=clock,
        )
        attempts = []

        def always_shed():
            attempts.append(1)
            raise DeadlineExceededError("expired")

        with pytest.raises(DeadlineExceededError):
            policy.call(always_shed)
        assert len(attempts) < 100

    def test_backoff_is_capped_and_jittered(self):
        import random

        policy = RetryPolicy(base_delay_s=0.01, max_delay_s=0.05,
                             multiplier=2.0, rng=random.Random(7))
        for attempt in range(1, 12):
            pause = policy.backoff_s(attempt)
            assert 0.0 <= pause <= 0.05

    def test_query_refuses_writes(self, warehouse):
        policy = RetryPolicy()
        with QCServer(warehouse, workers=1) as server:
            with pytest.raises(ServingError, match="idempotent reads"):
                policy.query(server, "insert", [("S3", "P1", "s", 5.0)])
            assert policy.query(server, "point", ("S2", "*", "f")) == 9.0

    def test_retry_covers_worker_kill(self, warehouse):
        faults = ServingFaults()
        with QCServer(warehouse, workers=2, faults=faults) as server:
            policy = RetryPolicy(max_attempts=4)
            faults.kill_next_worker()
            assert policy.query(server, "point", ("S2", "*", "f")) == 9.0
            assert policy.stats()["retries"] >= 1


class TestHealthReport:
    def test_healthy_server_reports_ok(self, warehouse):
        with QCServer(warehouse, workers=2) as server:
            report = server.health()
            assert report["status"] == "ok"
            assert report["live"] and report["ready"]
            assert report["staleness"]["lsn_lag"] == 0
            assert report["staleness"]["epoch_lag"] == 0
            assert report["workers"]["alive"] == 2
            assert report["degraded"] == {
                "writes": False, "warehouse": False, "reason": None,
            }
            assert report["breaker"]["state"] == CLOSED

    def test_health_served_as_an_op(self, warehouse):
        """Answering through the pool proves a live worker end to end."""
        with QCServer(warehouse, workers=2) as server:
            report = server.query("health")
            assert report["status"] == "ok"

    def test_closed_server_reports_down(self, warehouse):
        server = QCServer(warehouse, workers=1)
        server.close()
        report = server.health()
        assert report["status"] == "down"
        assert not report["live"] and not report["ready"]

    def test_degraded_server_not_ready_and_staleness_lags(self, warehouse):
        faults = ServingFaults()
        with QCServer(warehouse, workers=2, faults=faults) as server:
            faults.arm("write:publish", times=2, exc=InjectedCrash)
            with pytest.raises(ServingError):
                server.insert([("S3", "P1", "s", 5.0)])
            report = server.health()
            assert report["status"] == "degraded"
            assert report["live"] and not report["ready"]
            assert report["degraded"]["writes"] is True
            assert report["degraded"]["reason"]["phase"] == "publish"
            # The write applied to the dict tree but never published
            # (no WAL attached here, so the lag shows in the epoch).
            assert report["staleness"]["epoch_lag"] > 0
            assert server.recover()
            after = server.health()
            assert after["status"] == "ok"
            assert after["staleness"]["epoch_lag"] == 0

    def test_breaker_disabled_with_false(self, warehouse):
        with QCServer(warehouse, workers=1, breaker=False) as server:
            assert server.breaker is None
            assert server.health()["breaker"] is None


class TestBreakerIntegration:
    def test_error_burst_trips_breaker_and_sheds(self, warehouse):
        breaker = CircuitBreaker(error_threshold=0.5, min_requests=4,
                                 cooldown_s=30.0)
        with QCServer(warehouse, workers=1, breaker=breaker) as server:
            # rollup of a non-upper-bound cell raises QueryError.
            for _ in range(4):
                with pytest.raises(QueryError):
                    server.query("rollup", ("S1", "P1", "f"))
            assert breaker.state == OPEN
            with pytest.raises(CircuitOpenError):
                server.submit("point", ("S2", "*", "f"))
            counters = server.stats()["counters"]
            assert counters["breaker_rejected"] == 1
            # Breaker rejections never enter the admission ledger.
            assert counters["submitted"] == 4
            assert server.health()["status"] == "degraded"

    def test_breaker_recovers_through_half_open_probe(self, warehouse):
        breaker = CircuitBreaker(error_threshold=0.5, min_requests=4,
                                 cooldown_s=0.05)
        with QCServer(warehouse, workers=1, breaker=breaker) as server:
            for _ in range(4):
                with pytest.raises(QueryError):
                    server.query("rollup", ("S1", "P1", "f"))
            assert breaker.state == OPEN
            import time
            time.sleep(0.1)  # past the cooldown: next request is a probe
            assert server.point(("S2", "*", "f")) == 9.0
            assert breaker.state == CLOSED
            assert server.point(("S2", "*", "f")) == 9.0

    def test_circuit_open_is_retryable_overload(self):
        assert issubclass(CircuitOpenError, ServerOverloadedError)
