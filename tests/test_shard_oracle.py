"""Differential oracle: multi-process ShardServer ≡ thread QCServer.

For seeded random workloads (random table shape, random fleet size,
random router seeding, random point/range/iceberg mixes, mid-stream
writes) the multi-process server must return exactly what the
single-process thread server returns — sharding is a placement choice
and must never be a correctness one.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cells import ALL
from repro.core.warehouse import QCWarehouse
from repro.serving import QCServer
from repro.shard import ShardRouter, ShardServer, created_segments

from .conftest import approx_equal, make_random_table


def random_point_cell(rng, table):
    return tuple(
        ALL if rng.random() < 0.35 else rng.randrange(
            max(1, table.cardinality(j)) + 1  # may miss the domain
        )
        for j in range(table.n_dims)
    )


def random_range_spec(rng, table):
    spec = []
    for j in range(table.n_dims):
        roll = rng.random()
        card = max(1, table.cardinality(j))
        if roll < 0.3:
            spec.append(ALL)
        elif roll < 0.6:
            spec.append(rng.randrange(card))
        else:
            spec.append(rng.sample(range(card), min(2, card)))
    return tuple(spec)


def random_record(rng, table):
    return tuple(
        rng.randrange(max(1, table.cardinality(j)))
        for j in range(table.n_dims)
    ) + (float(rng.randint(0, 20)),)


def assert_same_answers(shard, oracle, rng, table, n_queries):
    for _ in range(n_queries):
        roll = rng.random()
        if roll < 0.5:
            cell = random_point_cell(rng, table)
            assert approx_equal(
                shard.point(cell), oracle.point(cell)
            ), cell
        elif roll < 0.8:
            spec = random_range_spec(rng, table)
            mine, theirs = shard.range(spec), oracle.range(spec)
            assert set(mine) == set(theirs), spec
            assert all(
                approx_equal(mine[k], theirs[k]) for k in mine
            ), spec
        elif roll < 0.9:
            threshold = rng.uniform(0.0, 25.0)
            op = rng.choice([">=", ">", "<=", "<"])
            assert sorted(
                shard.iceberg(threshold, op=op), key=repr
            ) == sorted(oracle.iceberg(threshold, op=op), key=repr)
        else:
            spec = random_range_spec(rng, table)
            threshold = rng.uniform(0.0, 25.0)
            mine = shard.query("iceberg_in_range", spec, threshold)
            theirs = oracle.query("iceberg_in_range", spec, threshold)
            assert mine == theirs, (spec, threshold)


@pytest.mark.parametrize("seed", [11, 29, 47])
def test_shard_matches_thread_server(seed):
    rng = random.Random(seed)
    table = make_random_table(seed, n_dims=rng.randint(2, 4),
                              cardinality=rng.randint(2, 4),
                              n_rows=rng.randint(8, 24))
    aggregate = rng.choice(["count", "sum(m)", "avg(m)", "max(m)"])
    processes = rng.randint(1, 3)
    router = ShardRouter(seed=rng.randrange(1000))

    shard = ShardServer(
        QCWarehouse(table, aggregate=aggregate),
        processes=processes, router=router, cache_size=0,
    )
    oracle = QCServer(
        QCWarehouse(table, aggregate=aggregate), workers=1, cache_size=0
    )
    try:
        assert_same_answers(shard, oracle, rng, table, n_queries=30)

        # Mid-stream writes: both servers apply the same batches, the
        # shard fleet re-publishes, answers must stay identical.
        for _ in range(3):
            records = [random_record(rng, table) for _ in range(3)]
            shard.insert(records)
            oracle.insert(records)
            assert_same_answers(shard, oracle, rng, table, n_queries=12)

        records = [random_record(rng, table) for _ in range(2)]
        shard.insert(records)
        oracle.insert(records)
        shard.delete(records[:1])
        oracle.delete(records[:1])
        assert_same_answers(shard, oracle, rng, table, n_queries=12)

        # Bulk path parity against the oracle's one-at-a-time answers.
        cells = [random_point_cell(rng, table) for _ in range(20)]
        bulk = shard.map_query("point", [(c,) for c in cells])
        assert all(
            approx_equal(b, oracle.point(c)) for b, c in zip(bulk, cells)
        )
    finally:
        shard.close()
        oracle.close()
    assert created_segments() == []


def test_every_router_sharding_answers_identically(sales_table):
    """The same workload through every possible slot placement."""
    expected = None
    cells = [("S1", "P1", "s"), ("S2", "*", "f"), ("*", "*", "*"),
             ("S1", "*", "s"), ("S2", "P2", "f")]
    for processes in (1, 2, 3):
        for seed in (0, 1):
            server = ShardServer(
                QCWarehouse(sales_table, aggregate="avg(Sale)"),
                processes=processes, router=ShardRouter(seed=seed),
                cache_size=0,
            )
            try:
                answers = [server.point(c) for c in cells]
            finally:
                server.close()
            if expected is None:
                expected = answers
            assert answers == expected, (processes, seed)
    assert created_segments() == []
