"""ServingSnapshot: frozen/dict parity for queries and exploration.

The serving subsystem answers every operation from a
:class:`~repro.serving.snapshot.ServingSnapshot` over the frozen tree.
These tests pin the satellite requirement that the exploration API
(``rollup``, ``rollups``, ``drilldowns``, ``open_class``,
``rollup_exceptions``) produces identical answers whether the snapshot
wraps the frozen view or the mutable dict tree, across random tables.
"""

from __future__ import annotations

import pytest

from repro.core.cells import ALL
from repro.core.warehouse import QCWarehouse
from repro.errors import QueryError
from tests.conftest import all_cells, make_random_table

ROWS = [
    ("S1", "P1", "s", 6.0),
    ("S1", "P2", "s", 12.0),
    ("S2", "P1", "f", 9.0),
]


def warehouse_pair(table, aggregate="avg(Sale)"):
    """The same data served frozen and served from the dict tree."""
    frozen = QCWarehouse(table, aggregate=aggregate, serve_frozen=True)
    dicty = QCWarehouse(table, aggregate=aggregate, serve_frozen=False)
    return frozen, dicty


@pytest.fixture
def pair(sales_table):
    return warehouse_pair(sales_table)


class TestExplorationParity:
    """Satellite 1: every exploration op, frozen view vs dict tree."""

    def test_paper_example_all_ops(self, pair):
        frozen, dicty = pair
        cell = ("S2", "P1", "f")
        assert frozen.rollup(cell) == dicty.rollup(cell)
        assert frozen.rollup_exceptions(cell) == dicty.rollup_exceptions(cell)
        assert frozen.rollups(cell) == dicty.rollups(cell)
        assert frozen.drilldowns(cell) == dicty.drilldowns(cell)
        assert frozen.class_of(cell) == dicty.class_of(cell)
        assert frozen.open_class(cell) == dicty.open_class(cell)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_tables_every_nonempty_cell(self, seed):
        table = make_random_table(seed, n_dims=3, cardinality=3, n_rows=8)
        frozen, dicty = warehouse_pair(table, aggregate="count")
        checked = 0
        for cell in all_cells(table):
            raw = table.decode_cell(cell)
            if frozen.class_of(raw) is None:
                assert dicty.class_of(raw) is None
                continue
            checked += 1
            assert frozen.rollup(raw) == dicty.rollup(raw)
            assert frozen.rollups(raw) == dicty.rollups(raw)
            assert frozen.drilldowns(raw) == dicty.drilldowns(raw)
            assert frozen.open_class(raw) == dicty.open_class(raw)
            assert (frozen.rollup_exceptions(raw)
                    == dicty.rollup_exceptions(raw))
        assert checked > 0

    def test_missing_cell_rejected_on_both_engines(self, pair):
        frozen, dicty = pair
        for wh in (frozen, dicty):
            with pytest.raises(QueryError):
                wh.rollup(("S1", "P1", "f"))  # encodable but empty

    def test_parity_survives_maintenance(self, pair):
        frozen, dicty = pair
        batch = [("S3", "P1", "s", 3.0), ("S3", "P2", "f", 7.0)]
        frozen.insert(batch)
        dicty.insert(batch)
        frozen.delete([ROWS[0]])
        dicty.delete([ROWS[0]])
        for cell in (("S3", "*", "*"), ("*", "P2", "*"), ("*", "*", "*")):
            assert frozen.rollup(cell) == dicty.rollup(cell)
            assert frozen.open_class(cell) == dicty.open_class(cell)
            assert frozen.drilldowns(cell) == dicty.drilldowns(cell)


class TestSnapshotObject:
    def test_snapshot_view_is_frozen_and_stamped(self, pair):
        frozen, _ = pair
        snap = frozen.snapshot_view()
        assert snap.describe()["frozen"] is True
        assert snap.stamp == frozen.serving_stamp()

    def test_snapshot_is_stable_across_mutation(self, pair):
        """A pinned snapshot keeps answering from its own version while
        the warehouse moves on — the linearizable-read building block."""
        frozen, _ = pair
        before = frozen.snapshot_view()
        assert before.point(("S3", "P1", "s")) is None
        frozen.insert([("S3", "P1", "s", 5.0)])
        after = frozen.snapshot_view()
        assert before.point(("S3", "P1", "s")) is None
        assert after.point(("S3", "P1", "s")) == 5.0
        assert before.stamp != after.stamp

    def test_view_caches_until_mutation(self, pair):
        frozen, _ = pair
        first = frozen.view
        assert frozen.view is first
        frozen.insert([("S4", "P1", "s", 1.0)])
        assert frozen.view is not first

    def test_describe_fields(self, pair):
        frozen, _ = pair
        info = frozen.snapshot_view().describe()
        assert set(info) == {"lsn", "epoch", "frozen", "n_rows",
                             "classes", "nodes"}
        assert info["n_rows"] == 3

    def test_query_parity_point_range_iceberg(self, pair):
        frozen, dicty = pair
        assert frozen.point(("S2", "*", "f")) == dicty.point(("S2", "*", "f"))
        spec = (["S1", "S2"], "*", "s")
        assert frozen.range(spec) == dicty.range(spec)
        assert frozen.iceberg(9.0) == dicty.iceberg(9.0)
        assert (frozen.iceberg_in_range(("*", "*", ALL), 6.0, op=">")
                == dicty.iceberg_in_range(("*", "*", ALL), 6.0, op=">"))


class TestWarehouseStatsStamp:
    """Satellite 3: stats() exposes the serving stamp and cache health."""

    def test_stats_serving_stamp(self, sales_table):
        wh = QCWarehouse(sales_table, aggregate="avg(Sale)")
        stamp = wh.stats()["serving_stamp"]
        assert stamp == {"lsn": 0, "epoch": 0, "frozen": True}
        wh.insert([("S3", "P1", "s", 5.0)])
        wh.point(("S3", "P1", "s"))  # force refreeze of the view
        stamp = wh.stats()["serving_stamp"]
        assert stamp["epoch"] == 1
        assert stamp["frozen"] is True

    def test_stats_cache_counters(self, sales_table):
        wh = QCWarehouse(sales_table, aggregate="avg(Sale)", cache_size=64)
        wh.point(("S2", "*", "f"))
        wh.point(("S2", "*", "f"))
        cache = wh.stats()["query_cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 1
        assert cache["evictions"] == 0
