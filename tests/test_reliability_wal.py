"""Tests for the write-ahead log: durability, torn tails, corruption."""

import pytest

from repro.errors import RecoveryError
from repro.reliability.faults import (
    InjectedCrash,
    crash_on_io,
    partial_append,
    torn_write,
)
from repro.reliability.wal import WriteAheadLog


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "maintenance.wal")


BATCH_A = [("S1", "P1", "s", 6.0), ("S2", "P1", "f", 9.0)]
BATCH_B = [("S1", "P2", "s", 12.0)]


class TestAppendReplay:
    def test_roundtrip(self, wal_path):
        wal = WriteAheadLog(wal_path)
        assert wal.append("insert", BATCH_A) == 1
        assert wal.append("delete", BATCH_B) == 2
        records = wal.records()
        assert [r.op for r in records] == ["insert", "delete"]
        assert [r.lsn for r in records] == [1, 2]
        assert records[0].records == (("S1", "P1", "s", 6.0),
                                      ("S2", "P1", "f", 9.0))

    def test_replay_from_fresh_handle(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("insert", BATCH_A)
        reopened = WriteAheadLog(wal_path)
        assert len(reopened.records()) == 1
        # Appends continue the sequence across reopen.
        assert reopened.append("insert", BATCH_B) == 2

    def test_empty_log(self, wal_path):
        wal = WriteAheadLog(wal_path)
        assert wal.records() == []
        assert len(wal) == 0

    def test_truncate_drops_records_keeps_sequence(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("insert", BATCH_A)
        wal.truncate()
        assert wal.records() == []
        # Sequence numbers are monotonic across truncation, so snapshots
        # stamped before it stay comparable with later log records.
        assert wal.append("insert", BATCH_B) == 2
        reopened = WriteAheadLog(wal_path)
        assert reopened.base_lsn == 1
        assert [r.lsn for r in reopened.records()] == [2]

    def test_unknown_op_rejected(self, wal_path):
        wal = WriteAheadLog(wal_path)
        with pytest.raises(RecoveryError):
            wal.append("upsert", BATCH_A)

    def test_append_is_fsynced_before_return(self, wal_path):
        wal = WriteAheadLog(wal_path)
        with crash_on_io(fail_after=None) as clock:
            wal.append("insert", BATCH_A)
        labels = [label.split(":")[0] for label in clock.trace]
        assert "fsync" in labels
        assert labels.index("write") < labels.index("fsync")


class TestTornTail:
    def test_partial_append_is_dropped(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("insert", BATCH_A)
        partial_append(wal_path)
        reopened = WriteAheadLog(wal_path)
        records = reopened.records()
        assert len(records) == 1  # the committed batch survives
        assert reopened.tail_was_torn

    def test_torn_last_record_is_dropped(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("insert", BATCH_A)
        size_after_one = len(open(wal_path, "rb").read())
        wal.append("delete", BATCH_B)
        # Cut mid-way through the second record.
        torn_write(wal_path, keep_bytes=size_after_one + 10)
        records = WriteAheadLog(wal_path).records()
        assert [r.op for r in records] == ["insert"]

    def test_append_after_torn_tail_recovers(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("insert", BATCH_A)
        partial_append(wal_path, "ffffffff {\"broken")
        reopened = WriteAheadLog(wal_path)
        # The torn garbage has no trailing newline; the next append glues
        # onto it, and that composite line fails its checksum — replay
        # must not resurrect it, and committed appends keep their lsn
        # chain from the last *committed* record.
        reopened.append("delete", BATCH_B)
        final = WriteAheadLog(wal_path).records()
        assert [(r.lsn, r.op) for r in final] == [(1, "insert")] or \
               [(r.lsn, r.op) for r in final] == [(1, "insert"), (2, "delete")]

    def test_crash_during_append_never_loses_prior_records(self, wal_path):
        from repro.reliability.faults import count_io

        wal = WriteAheadLog(wal_path)
        wal.append("insert", BATCH_A)
        committed_bytes = open(wal_path, "rb").read()
        total = count_io(lambda: WriteAheadLog(wal_path).append(
            "delete", BATCH_B))
        for fail_after in range(total):
            with open(wal_path, "wb") as fp:
                fp.write(committed_bytes)
            w = WriteAheadLog(wal_path)
            with crash_on_io(fail_after):
                with pytest.raises(InjectedCrash):
                    w.append("delete", BATCH_B)
            survivors = WriteAheadLog(wal_path).records()
            # Batch A always survives; batch B is all-or-nothing.
            assert survivors[0].records == (("S1", "P1", "s", 6.0),
                                            ("S2", "P1", "f", 9.0))
            assert len(survivors) in (1, 2)


class TestRealCorruption:
    def test_corrupt_record_followed_by_valid_raises(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("insert", BATCH_A)
        size_one = len(open(wal_path, "rb").read())
        wal.append("delete", BATCH_B)
        data = open(wal_path, "rb").read()
        # Flip a byte inside the FIRST record (keeping the line intact).
        pos = size_one - 20
        corrupted = data[:pos] + bytes([data[pos] ^ 0xFF]) + data[pos + 1:]
        with open(wal_path, "wb") as fp:
            fp.write(corrupted)
        with pytest.raises(RecoveryError, match="damaged"):
            WriteAheadLog(wal_path).records()

    def test_bad_magic_raises(self, wal_path):
        with open(wal_path, "w") as fp:
            fp.write("NOTAWAL\n")
        with pytest.raises(RecoveryError, match="magic"):
            WriteAheadLog(wal_path)

    def test_sequence_break_raises(self, wal_path):
        import json
        import zlib

        wal = WriteAheadLog(wal_path)
        wal.append("insert", BATCH_A)
        body = json.dumps({"lsn": 5, "op": "insert", "records": []})
        crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
        with open(wal_path, "a") as fp:
            fp.write(f"{crc:08x} {body}\n")
        with pytest.raises(RecoveryError, match="sequence"):
            WriteAheadLog(wal_path).records()

    def test_empty_file_is_a_fresh_log(self, wal_path):
        open(wal_path, "w").close()
        wal = WriteAheadLog(wal_path)
        assert wal.records() == []
        wal.append("insert", BATCH_A)
        assert len(WriteAheadLog(wal_path).records()) == 1
