"""Tests for QC-tree construction (Algorithm 1) against the paper's Figure 4
and Theorem 1 (uniqueness)."""

import random

import pytest

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.cube.lattice import closed_cells
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from tests.conftest import make_random_table


class TestPaperFigure4:
    @pytest.fixture
    def tree(self, sales_table):
        return build_qctree(sales_table, ("avg", "Sale"))

    def test_node_count(self, tree):
        assert tree.n_nodes == 11

    def test_link_count(self, tree):
        assert tree.n_links == 5

    def test_six_classes(self, tree):
        assert tree.n_classes == 6

    def test_class_values(self, tree, sales_table):
        got = {
            sales_table.decode_cell(ub): value
            for ub, value in tree.class_upper_bounds().items()
        }
        assert got == {
            ("*", "*", "*"): 9.0,
            ("*", "P1", "*"): 7.5,
            ("S1", "*", "s"): 9.0,
            ("S1", "P1", "s"): 6.0,
            ("S1", "P2", "s"): 12.0,
            ("S2", "P1", "f"): 9.0,
        }

    def test_exact_links(self, tree, sales_table):
        dec = sales_table.decode_cell
        links = {
            (dec(tree.upper_bound_of(src)), dim,
             sales_table.decode_value(dim, value),
             dec(tree.upper_bound_of(tgt)))
            for src, dim, value, tgt in tree.iter_links()
        }
        # Figure 4: three links out of the root, two out of node <P1>.
        assert links == {
            (("*", "*", "*"), 1, "P2", ("S1", "P2", "*")),
            (("*", "*", "*"), 2, "s", ("S1", "*", "s")),
            (("*", "*", "*"), 2, "f", ("S2", "P1", "f")),
            (("*", "P1", "*"), 2, "s", ("S1", "P1", "s")),
            (("*", "P1", "*"), 2, "f", ("S2", "P1", "f")),
        }


class TestTheorem1:
    @pytest.mark.parametrize("seed", range(15))
    def test_unique_under_row_permutation(self, seed):
        table = make_random_table(seed)
        rng = random.Random(seed)
        order = list(range(table.n_rows))
        rng.shuffle(order)
        a = build_qctree(table, ("sum", "m"))
        b = build_qctree(table.subset(order), ("sum", "m"))
        assert a.equivalent_to(b)

    @pytest.mark.parametrize("seed", range(15))
    def test_one_path_per_closed_cell(self, seed):
        table = make_random_table(seed + 50)
        tree = build_qctree(table, "count")
        class_bounds = {
            tree.upper_bound_of(n) for n in tree.iter_class_nodes()
        }
        assert class_bounds == closed_cells(table)

    @pytest.mark.parametrize("seed", range(10))
    def test_every_node_on_some_class_path(self, seed):
        # Prefix sharing never leaves orphan branches: every node lies on
        # the path of at least one class upper bound.
        table = make_random_table(seed + 80)
        tree = build_qctree(table, "count")
        from repro.core.cells import generalizes

        bounds = [tree.upper_bound_of(n) for n in tree.iter_class_nodes()]
        for node in tree.iter_nodes():
            cell = tree.upper_bound_of(node)
            assert any(generalizes(cell, ub) for ub in bounds)

    @pytest.mark.parametrize("seed", range(10))
    def test_dimensions_increase_along_paths(self, seed):
        table = make_random_table(seed + 120)
        tree = build_qctree(table, "count")
        for node in tree.iter_nodes():
            for dim, by_value in tree.children[node].items():
                assert dim > tree.node_dim[node]
                for value, child in by_value.items():
                    assert tree.node_dim[child] == dim
                    assert tree.node_value[child] == value
                    assert tree.parent[child] == node


class TestEdgeCases:
    def test_empty_table(self):
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        table = BaseTable.from_encoded([], [], schema, cardinalities=[2, 2])
        tree = build_qctree(table, "count")
        assert tree.n_classes == 0
        assert tree.n_nodes == 1

    def test_single_tuple(self):
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        table = BaseTable.from_encoded([(0, 1)], [[5.0]], schema)
        tree = build_qctree(table, ("sum", "m"))
        # One class: everything collapses onto the tuple itself.
        assert tree.n_classes == 1
        assert tree.class_upper_bounds() == {(0, 1): 5.0}

    def test_constant_dimension_closure_at_root(self):
        # When one dimension is constant, the root class's upper bound is
        # not the all-star cell; the root node itself carries no state.
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        table = BaseTable.from_encoded(
            [(0, 0), (0, 1)], [[1.0], [2.0]], schema
        )
        tree = build_qctree(table, "count")
        assert tree.state[tree.root] is None
        assert (0, ALL) in tree.class_upper_bounds()

    def test_one_dimension(self):
        schema = Schema(dimensions=("A",), measures=("m",))
        table = BaseTable.from_encoded(
            [(0,), (1,), (1,)], [[1.0], [2.0], [3.0]], schema
        )
        tree = build_qctree(table, "count")
        assert tree.class_upper_bounds() == {(ALL,): 3, (0,): 1, (1,): 2}

    def test_all_rows_identical(self):
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        table = BaseTable.from_encoded(
            [(1, 1)] * 4, [[1.0]] * 4, schema
        )
        tree = build_qctree(table, "count")
        assert tree.class_upper_bounds() == {(1, 1): 4}

    def test_duplicate_rows_counted(self, sales_schema):
        table = BaseTable.from_records(
            [("S1", "P1", "s", 6.0), ("S1", "P1", "s", 8.0)], sales_schema
        )
        tree = build_qctree(table, ("avg", "Sale"))
        assert list(tree.class_upper_bounds().values()) == [7.0]
