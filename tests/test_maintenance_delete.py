"""Tests for incremental batch deletion (§3.3.2), including the paper's
Example 4 and Theorem 2 equality with a rebuild."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import build_qctree
from repro.core.maintenance.delete import (
    apply_deletions,
    delete_one_by_one,
)
from repro.core.maintenance.insert import apply_insertions
from repro.core.point_query import point_query
from repro.errors import MaintenanceError
from tests.conftest import all_cells, approx_equal, make_random_table


def _assert_equals_rebuild(tree, new_table, aggregate):
    rebuilt = build_qctree(new_table, aggregate)
    assert tree.signature()[0] == rebuilt.signature()[0], "paths differ"
    assert tree.signature()[1] == rebuilt.signature()[1], "links differ"
    assert tree.equivalent_to(rebuilt), "classes differ"


class TestPaperExample4:
    def test_deletion_merges_classes(self, extended_sales_table):
        """Delete (S2,P2,f), (S2,P3,f) from the five-tuple warehouse."""
        tree = build_qctree(extended_sales_table, ("avg", "Sale"))
        new_table = apply_deletions(
            tree, extended_sales_table,
            [("S2", "P2", "f", 0.0), ("S2", "P3", "f", 0.0)],
        )
        _assert_equals_rebuild(tree, new_table, ("avg", "Sale"))
        decoded = {
            new_table.decode_cell(ub): value
            for ub, value in tree.class_upper_bounds().items()
        }
        # (S2,P2,f) and (S2,P3,f) classes are gone; (S2,*,f) merged into
        # (S2,P1,f); (*,P2,*) merged into (S1,P2,s).
        assert ("S2", "P2", "f") not in decoded
        assert ("S2", "P3", "f") not in decoded
        assert ("S2", "*", "f") not in decoded
        assert ("*", "P2", "*") not in decoded
        assert decoded[("S2", "P1", "f")] == 9.0
        assert decoded[("S1", "P2", "s")] == 12.0

    def test_example4_restores_original_tree(self, sales_table,
                                             extended_sales_table):
        """Deleting the two extra tuples recovers the Figure 4 tree."""
        tree = build_qctree(extended_sales_table, ("avg", "Sale"))
        apply_deletions(
            tree, extended_sales_table,
            [("S2", "P2", "f", 0.0), ("S2", "P3", "f", 0.0)],
        )
        original = build_qctree(sales_table, ("avg", "Sale"))
        assert tree.n_nodes == original.n_nodes == 11
        assert tree.n_links == original.n_links == 5

    def test_merge_adds_paper_link(self, extended_sales_table):
        """Example 4: "add a link labelled P2 from (*,*,*) to (S1,P2,s)"."""
        tree = build_qctree(extended_sales_table, ("avg", "Sale"))
        apply_deletions(
            tree, extended_sales_table,
            [("S2", "P2", "f", 0.0), ("S2", "P3", "f", 0.0)],
        )
        table = extended_sales_table
        links = {
            (table.decode_cell(tree.upper_bound_of(src)),
             table.decode_value(dim, value))
            for src, dim, value, _tgt in tree.iter_links()
        }
        assert (("*", "*", "*"), "P2") in links


class TestTheorem2:
    @pytest.mark.parametrize("seed", range(25))
    def test_batch_equals_rebuild(self, seed):
        rng = random.Random(seed)
        table = make_random_table(seed)
        agg = rng.choice([("sum", "m"), "count", ("avg", "m"), ("min", "m")])
        tree = build_qctree(table, agg)
        records = list(table.iter_records())
        k = rng.randint(1, len(records))
        new_table = apply_deletions(tree, table, rng.sample(records, k))
        _assert_equals_rebuild(tree, new_table, agg)

    @pytest.mark.parametrize("seed", range(8))
    def test_one_by_one_equals_rebuild(self, seed):
        rng = random.Random(seed + 500)
        table = make_random_table(seed)
        tree = build_qctree(table, ("sum", "m"))
        records = list(table.iter_records())
        k = rng.randint(1, max(1, len(records) // 2))
        new_table = delete_one_by_one(tree, table, rng.sample(records, k))
        _assert_equals_rebuild(tree, new_table, ("sum", "m"))

    @given(st.integers(0, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_hypothesis_sweep(self, seed):
        rng = random.Random(seed)
        table = make_random_table(seed, n_dims=3, cardinality=3,
                                  n_rows=rng.randint(1, 8))
        tree = build_qctree(table, "count")
        records = list(table.iter_records())
        new_table = apply_deletions(
            tree, table, rng.sample(records, rng.randint(1, len(records)))
        )
        _assert_equals_rebuild(tree, new_table, "count")

    def test_delete_everything_empties_tree(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        apply_deletions(tree, sales_table, list(sales_table.iter_records()))
        assert tree.n_classes == 0
        assert tree.n_nodes == 1
        assert tree.n_links == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_queries_after_delete_match_oracle(self, seed):
        rng = random.Random(seed + 900)
        table = make_random_table(seed)
        tree = build_qctree(table, ("sum", "m"))
        records = list(table.iter_records())
        new_table = apply_deletions(
            tree, table, rng.sample(records, rng.randint(1, len(records)))
        )
        from repro.cube.lattice import cell_aggregate

        for cell in all_cells(new_table):
            assert approx_equal(
                point_query(tree, cell),
                cell_aggregate(new_table, ("sum", "m"), cell),
            )

    def test_deleting_missing_record_rejected(self, sales_table):
        tree = build_qctree(sales_table, "count")
        with pytest.raises(MaintenanceError):
            apply_deletions(tree, sales_table, [("S9", "P1", "s", 0.0)])
        with pytest.raises(MaintenanceError):
            apply_deletions(
                tree, sales_table,
                [("S2", "P1", "f", 0.0), ("S2", "P1", "f", 0.0)],
            )

    def test_duplicate_rows_deleted_one_at_a_time(self, sales_schema):
        from repro.cube.table import BaseTable

        table = BaseTable.from_records(
            [("S1", "P1", "s", 1.0), ("S1", "P1", "s", 5.0)], sales_schema
        )
        tree = build_qctree(table, "count")
        new_table = apply_deletions(tree, table, [("S1", "P1", "s", 0.0)])
        assert new_table.n_rows == 1
        assert tree.class_upper_bounds() == {(0, 0, 0): 1}

    def test_min_aggregate_recomputes_on_delete(self, sales_schema):
        from repro.cube.table import BaseTable

        table = BaseTable.from_records(
            [("S1", "P1", "s", 1.0), ("S1", "P1", "s", 5.0)], sales_schema
        )
        tree = build_qctree(table, ("min", "Sale"))
        apply_deletions(tree, table, [("S1", "P1", "s", 0.0)])
        # MIN cannot be subtracted; the affected class must be recomputed.
        [(ub, value)] = tree.class_upper_bounds().items()
        assert value in (1.0, 5.0)  # whichever copy remained


class TestRoundTrips:
    @pytest.mark.parametrize("seed", range(10))
    def test_insert_then_delete_restores_tree(self, seed):
        # Deletion matches rows on dimension values only, so the round
        # trip is exact for measure-independent aggregates (COUNT); with
        # duplicate dimension tuples, SUM could legitimately remove a
        # different copy than the one inserted.
        rng = random.Random(seed)
        table = make_random_table(seed)
        tree = build_qctree(table, "count")
        original = build_qctree(table, "count")
        delta = [
            tuple(rng.randrange(table.cardinality(0))
                  for _ in range(table.n_dims)) + (float(rng.randint(0, 9)),)
            for _ in range(3)
        ]
        bigger = apply_insertions(tree, table, delta)
        # Delete exactly the rows we added (they occupy the tail).
        tail = list(bigger.iter_records())[table.n_rows:]
        apply_deletions(tree, bigger, tail)
        assert tree.equivalent_to(original)
