"""Tests for incremental batch insertion (Algorithm 2) — Theorem 2 says the
maintained tree must equal a from-scratch rebuild, links included."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import build_qctree
from repro.core.maintenance.insert import (
    apply_insertions,
    batch_insert,
    closures_below,
    insert_one_by_one,
)
from repro.core.point_query import point_query
from repro.cube.lattice import closure
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from repro.errors import MaintenanceError
from tests.conftest import all_cells, approx_equal, make_random_table


def _random_records(rng, n_dims, card, count):
    return [
        tuple(rng.randrange(card) for _ in range(n_dims))
        + (float(rng.randint(0, 9)),)
        for _ in range(count)
    ]


def _assert_equals_rebuild(tree, new_table, aggregate):
    rebuilt = build_qctree(new_table, aggregate)
    assert tree.signature()[0] == rebuilt.signature()[0], "paths differ"
    assert tree.signature()[1] == rebuilt.signature()[1], "links differ"
    assert tree.equivalent_to(rebuilt), "classes differ"


class TestPaperExample3:
    def test_batch_update_of_running_example(self, sales_table):
        """Example 3: insert (S2,P2,f) and (S2,P3,f) into the sales cube."""
        tree = build_qctree(sales_table, ("avg", "Sale"))
        new_table = apply_insertions(
            tree, sales_table,
            [("S2", "P2", "f", 4.0), ("S2", "P3", "f", 1.0)],
        )
        _assert_equals_rebuild(tree, new_table, ("avg", "Sale"))
        decoded = {
            new_table.decode_cell(ub): value
            for ub, value in tree.class_upper_bounds().items()
        }
        # Figure 8's new classes appear with their bounds:
        assert ("S2", "*", "f") in decoded       # split from (S2, P1, f)
        assert ("*", "P2", "*") in decoded       # split from (S1, P2, s)
        assert ("S2", "P2", "f") in decoded      # newly inserted
        assert ("S2", "P3", "f") in decoded      # newly inserted
        assert ("S2", "P1", "f") in decoded      # old bound survives
        # The root class's measure was updated.
        assert decoded[("*", "*", "*")] == pytest.approx(32 / 5)

    def test_insert_duplicate_of_existing_tuple(self, sales_table):
        """Case 1 of §3.3.1: same dimension values as an existing tuple."""
        tree = build_qctree(sales_table, ("avg", "Sale"))
        new_table = apply_insertions(tree, sales_table,
                                     [("S2", "P1", "f", 3.0)])
        _assert_equals_rebuild(tree, new_table, ("avg", "Sale"))
        decoded = {
            new_table.decode_cell(ub): value
            for ub, value in tree.class_upper_bounds().items()
        }
        assert decoded[("S2", "P1", "f")] == 6.0  # avg(9, 3)


class TestTheorem2:
    @pytest.mark.parametrize("seed", range(25))
    def test_batch_equals_rebuild(self, seed):
        rng = random.Random(seed)
        table = make_random_table(seed)
        agg = rng.choice([("sum", "m"), "count", ("avg", "m"), ("max", "m")])
        tree = build_qctree(table, agg)
        delta = _random_records(rng, table.n_dims, table.cardinality(0),
                                rng.randint(1, 6))
        new_table = apply_insertions(tree, table, delta)
        _assert_equals_rebuild(tree, new_table, agg)

    @pytest.mark.parametrize("seed", range(8))
    def test_one_by_one_equals_rebuild(self, seed):
        rng = random.Random(seed + 1000)
        table = make_random_table(seed)
        tree = build_qctree(table, ("sum", "m"))
        delta = _random_records(rng, table.n_dims, table.cardinality(0), 4)
        new_table = insert_one_by_one(tree, table, delta)
        _assert_equals_rebuild(tree, new_table, ("sum", "m"))

    @given(st.integers(0, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_hypothesis_sweep(self, seed):
        rng = random.Random(seed)
        table = make_random_table(seed, n_dims=3, cardinality=3,
                                  n_rows=rng.randint(1, 8))
        tree = build_qctree(table, "count")
        delta = _random_records(rng, 3, 4, rng.randint(1, 4))
        new_table = apply_insertions(tree, table, delta)
        _assert_equals_rebuild(tree, new_table, "count")

    @pytest.mark.parametrize("seed", range(8))
    def test_queries_after_insert_match_oracle(self, seed):
        rng = random.Random(seed + 2000)
        table = make_random_table(seed)
        tree = build_qctree(table, ("sum", "m"))
        delta = _random_records(rng, table.n_dims, table.cardinality(0), 4)
        new_table = apply_insertions(tree, table, delta)
        from repro.cube.lattice import cell_aggregate

        for cell in all_cells(new_table):
            assert approx_equal(
                point_query(tree, cell),
                cell_aggregate(new_table, ("sum", "m"), cell),
            )

    def test_insert_into_empty_warehouse(self):
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        table = BaseTable.from_encoded([], [], schema, cardinalities=[3, 3])
        tree = build_qctree(table, ("sum", "m"))
        new_table = apply_insertions(
            tree, table, [(0, 1, 5.0), (2, 1, 3.0)]
        )
        _assert_equals_rebuild(tree, new_table, ("sum", "m"))

    def test_new_dimension_values(self, sales_table):
        """Inserted tuples may carry labels never seen before."""
        tree = build_qctree(sales_table, ("avg", "Sale"))
        new_table = apply_insertions(
            tree, sales_table, [("S3", "P9", "w", 2.0)]
        )
        _assert_equals_rebuild(tree, new_table, ("avg", "Sale"))

    def test_empty_delta_is_noop(self, sales_table):
        tree = build_qctree(sales_table, "count")
        before = tree.signature()
        new_table = apply_insertions(tree, sales_table, [])
        assert tree.signature() == before
        assert new_table.n_rows == sales_table.n_rows

    def test_dimension_mismatch_rejected(self, sales_table):
        tree = build_qctree(sales_table, "count")
        other = BaseTable.from_encoded(
            [(0,)], [[1.0]], Schema(dimensions=("X",), measures=("m",))
        )
        with pytest.raises(MaintenanceError):
            batch_insert(tree, other, other)

    def test_repeated_batches_stay_consistent(self, sales_table):
        rng = random.Random(0)
        tree = build_qctree(sales_table, ("sum", "Sale"))
        table = sales_table
        stores, products, seasons = ["S1", "S2", "S3"], ["P1", "P2"], ["s", "f"]
        for _ in range(5):
            delta = [
                (rng.choice(stores), rng.choice(products), rng.choice(seasons),
                 float(rng.randint(1, 9)))
                for _ in range(3)
            ]
            table = apply_insertions(tree, table, delta)
        _assert_equals_rebuild(tree, table, ("sum", "Sale"))


class TestClosuresBelow:
    @pytest.mark.parametrize("seed", range(10))
    def test_enumerates_all_closures_of_generalizations(self, seed):
        table = make_random_table(seed)
        tree = build_qctree(table, "count")
        for row in table.rows[:3]:
            found = set(closures_below(tree, row))
            from repro.core.cells import generalizations

            expected = {
                closure(table, g)
                for g in generalizations(row)
                if closure(table, g) is not None
            }
            assert found == expected
