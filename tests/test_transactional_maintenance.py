"""Transactional maintenance: failed batches leave no trace.

``apply_insertions`` / ``apply_deletions`` must either complete or leave
the tree (and the caller's table) observably unchanged — same point-query
answers, same structure, invariants intact — raising
:class:`MaintenanceError` for anything that is not a repro error already.
"""

import pytest

from repro.core.construct import build_qctree
from repro.core.maintenance.delete import apply_deletions
from repro.core.maintenance.insert import apply_insertions
from repro.core.point_query import point_query
from repro.core.qctree import QCTree
from repro.core.warehouse import QCWarehouse
from repro.cube.schema import Schema
from repro.errors import MaintenanceError
from tests.conftest import all_cells, approx_equal


SCHEMA = Schema(dimensions=("Store", "Product", "Season"),
                measures=("Sale",))
RECORDS = [
    ("S1", "P1", "s", 6.0),
    ("S1", "P2", "s", 12.0),
    ("S2", "P1", "f", 9.0),
]


def snapshot_answers(tree, table):
    return {cell: point_query(tree, cell) for cell in all_cells(table)}


def assert_unchanged(tree, table, before):
    tree.check_invariants()
    after = snapshot_answers(tree, table)
    assert before.keys() == after.keys()
    for cell in before:
        assert approx_equal(before[cell], after[cell]), cell


@pytest.fixture
def wh():
    return QCWarehouse.from_records(RECORDS, SCHEMA, aggregate=("avg", "Sale"))


class TestRefusedBatches:
    """Batches rejected by validation: the error fires before (or rolls
    back) any mutation."""

    def test_delete_absent_tuple(self, wh):
        before = snapshot_answers(wh.tree, wh.table)
        signature = wh.tree.signature()
        with pytest.raises(MaintenanceError, match="not present"):
            wh.delete([("S1", "P1", "f", 0.0)])  # labels exist, row doesn't
        assert wh.tree.signature() == signature
        assert wh.table.n_rows == 3
        assert_unchanged(wh.tree, wh.table, before)

    def test_delete_unknown_label(self, wh):
        before = snapshot_answers(wh.tree, wh.table)
        with pytest.raises(MaintenanceError, match="cannot delete"):
            wh.delete([("S9", "P1", "s", 0.0)])
        assert_unchanged(wh.tree, wh.table, before)

    def test_delete_partial_batch_rolls_back_entirely(self, wh):
        # First record is deletable, second is not: neither may apply.
        before = snapshot_answers(wh.tree, wh.table)
        with pytest.raises(MaintenanceError):
            wh.delete([("S1", "P1", "s", 0.0), ("S2", "P2", "w", 0.0)])
        assert wh.table.n_rows == 3
        assert_unchanged(wh.tree, wh.table, before)

    def test_insert_bad_arity(self, wh):
        before = snapshot_answers(wh.tree, wh.table)
        with pytest.raises(MaintenanceError, match="cannot insert"):
            wh.insert([("S3", "P1", 5.0)])  # missing a dimension
        assert wh.table.n_rows == 3
        assert_unchanged(wh.tree, wh.table, before)

    def test_queries_keep_working_after_refusal(self, wh):
        with pytest.raises(MaintenanceError):
            wh.delete([("S1", "P1", "f", 0.0)])
        assert approx_equal(wh.point(("S2", "*", "f")), 9.0)
        assert wh.range((["S1", "S2"], "*", "*"))
        # And the warehouse still verifies clean.
        assert wh.verify(samples=None).ok


class _FailAfter:
    """Wrap a method so its (n+1)-th call raises RuntimeError."""

    def __init__(self, method, n):
        self.method = method
        self.remaining = n

    def __call__(self, *args, **kwargs):
        if self.remaining == 0:
            raise RuntimeError("injected mid-mutation failure")
        self.remaining -= 1
        return self.method(*args, **kwargs)


def count_calls(method_name, operation, tree):
    calls = 0
    original = getattr(QCTree, method_name)

    def counting(self, *args, **kwargs):
        nonlocal calls
        calls += 1
        return original(self, *args, **kwargs)

    setattr(QCTree, method_name, counting)
    try:
        operation(tree)
    finally:
        setattr(QCTree, method_name, original)
    return calls


class TestMidMutationFailure:
    """A failure inside the batch algorithms (simulated via a tree
    primitive that starts raising) must roll back to the exact prior
    state — at every possible failure point."""

    def _sweep(self, make_tree, table_of, operation, method_name="set_state"):
        total = count_calls(method_name, operation, make_tree())
        assert total > 0
        original = getattr(QCTree, method_name)
        for n in range(total):
            tree = make_tree()
            before = snapshot_answers(tree, table_of(tree))
            signature = tree.signature()
            setattr(QCTree, method_name,
                    _FailAfter(lambda *a, **k: original(*a, **k), n))
            try:
                with pytest.raises(MaintenanceError,
                                   match="rolled back"):
                    operation(tree)
            finally:
                setattr(QCTree, method_name, original)
            assert tree.signature() == signature, f"failure point {n}"
            assert_unchanged(tree, table_of(tree), before)

    def test_insert_rolls_back_at_every_failure_point(self, sales_table):
        new_records = [("S3", "P1", "w", 2.0), ("S2", "P2", "f", 4.0)]

        def make_tree():
            return build_qctree(sales_table, ("avg", "Sale"))

        self._sweep(
            make_tree,
            lambda tree: sales_table,
            lambda tree: apply_insertions(tree, sales_table, new_records),
        )

    def test_delete_rolls_back_at_every_failure_point(self, sales_table):
        def make_tree():
            return build_qctree(sales_table, ("avg", "Sale"))

        self._sweep(
            make_tree,
            lambda tree: sales_table,
            lambda tree: apply_deletions(
                tree, sales_table, [("S1", "P2", "s", 0.0)]
            ),
        )

    def test_failure_is_wrapped_with_cause(self, sales_table):
        tree = build_qctree(sales_table, "count")
        original = QCTree.set_state
        QCTree.set_state = _FailAfter(
            lambda *a, **k: original(*a, **k), 0
        )
        try:
            with pytest.raises(MaintenanceError) as exc_info:
                apply_insertions(tree, sales_table, [("S3", "P3", "w", 1.0)])
        finally:
            QCTree.set_state = original
        assert isinstance(exc_info.value.__cause__, RuntimeError)


class TestNonSubtractableAggregate:
    """MIN/MAX deletion recomputes states from the base table; a failure
    in that recomputation must roll back like any other."""

    def test_min_delete_succeeds_normally(self, sales_table):
        tree = build_qctree(sales_table, ("min", "Sale"))
        assert not tree.aggregate.subtractable
        new_table = apply_deletions(tree, sales_table,
                                    [("S1", "P2", "s", 0.0)])
        assert tree.equivalent_to(build_qctree(new_table, ("min", "Sale")))

    def test_failing_recompute_rolls_back(self, sales_table):
        tree = build_qctree(sales_table, ("min", "Sale"))
        before = snapshot_answers(tree, sales_table)
        signature = tree.signature()
        agg = tree.aggregate
        original_state = agg.state
        calls = {"n": 0}

        def flaky_state(table, rows):
            calls["n"] += 1
            raise RuntimeError("aggregate backend failure")

        agg.state = flaky_state
        try:
            with pytest.raises(MaintenanceError, match="rolled back"):
                apply_deletions(tree, sales_table, [("S1", "P2", "s", 0.0)])
        finally:
            agg.state = original_state
        assert calls["n"] > 0  # the failure really came from the aggregate
        assert tree.signature() == signature
        assert_unchanged(tree, sales_table, before)
