"""Tests for the QCWarehouse façade."""

import pytest

from repro.core.construct import build_qctree
from repro.core.warehouse import QCWarehouse
from repro.errors import MaintenanceError, SchemaError


@pytest.fixture
def warehouse(sales_schema):
    return QCWarehouse.from_records(
        [
            ("S1", "P1", "s", 6.0),
            ("S1", "P2", "s", 12.0),
            ("S2", "P1", "f", 9.0),
        ],
        sales_schema,
        aggregate=("avg", "Sale"),
    )


class TestQueries:
    def test_point(self, warehouse):
        assert warehouse.point(("S2", "*", "f")) == 9.0
        assert warehouse.point(("S2", "*", "s")) is None
        assert warehouse.point(("NOPE", "*", "*")) is None

    def test_range(self, warehouse):
        result = warehouse.range((["S1", "S2"], "*", "*"))
        assert result == {
            ("S1", "*", "*"): 9.0,
            ("S2", "*", "*"): 9.0,
        }

    def test_iceberg(self, warehouse):
        result = dict(warehouse.iceberg(10))
        assert result == {("S1", "P2", "s"): 12.0}

    def test_iceberg_in_range_strategies_agree(self, warehouse):
        spec = (["S1", "S2"], "*", "*")
        a = warehouse.iceberg_in_range(spec, 9)
        b = warehouse.iceberg_in_range(spec, 9, strategy="mark")
        assert a == b == {("S1", "*", "*"): 9.0, ("S2", "*", "*"): 9.0}

    def test_iceberg_in_range_unknown_values(self, warehouse):
        assert warehouse.iceberg_in_range((["ZZ"], "*", "*"), 0) == {}

    def test_stats(self, warehouse):
        stats = warehouse.stats()
        assert stats["classes"] == 6
        assert stats["n_rows"] == 3
        assert stats["aggregate"] == "avg(Sale)"


class TestMaintenance:
    def test_insert_updates_queries(self, warehouse):
        warehouse.insert([("S2", "P2", "f", 4.0)])
        assert warehouse.point(("S2", "*", "f")) == pytest.approx(6.5)
        assert warehouse.table.n_rows == 4

    def test_insert_matches_rebuild(self, warehouse):
        warehouse.insert([("S3", "P1", "w", 2.0), ("S1", "P1", "s", 4.0)])
        rebuilt = build_qctree(warehouse.table, warehouse.aggregate)
        assert warehouse.tree.equivalent_to(rebuilt)

    def test_delete_matches_rebuild(self, warehouse):
        warehouse.delete([("S1", "P2", "s", 0.0)])
        rebuilt = build_qctree(warehouse.table, warehouse.aggregate)
        assert warehouse.tree.equivalent_to(rebuilt)
        assert warehouse.point(("*", "P2", "*")) is None

    def test_delete_missing_rejected(self, warehouse):
        with pytest.raises(MaintenanceError):
            warehouse.delete([("S9", "P1", "s", 0.0)])

    def test_index_invalidated_after_update(self, warehouse):
        before = warehouse.index
        warehouse.insert([("S2", "P2", "f", 100.0)])
        after = warehouse.index
        assert after is not before
        # The insert split (*,P2,*) and (S2,*,f) off their old classes;
        # both now average above 50 alongside the new tuple's class.
        assert dict(warehouse.iceberg(50)) == {
            ("S2", "P2", "f"): 100.0,
            ("*", "P2", "*"): 56.0,
            ("S2", "*", "f"): 54.5,
        }


class TestExploration:
    def test_class_of(self, warehouse):
        assert warehouse.class_of(("S1", "*", "*")) == (("S1", "*", "s"), 9.0)
        assert warehouse.class_of(("S2", "*", "s")) is None

    def test_rollup(self, warehouse):
        contexts = warehouse.rollup(("S2", "P1", "f"))
        assert contexts[0] == (("*", "*", "*"), 9.0)

    def test_rollup_exceptions(self, warehouse):
        assert warehouse.rollup_exceptions(("S2", "P1", "f")) == [
            (("*", "P1", "*"), 7.5)
        ]

    def test_drilldowns(self, warehouse):
        results = dict(warehouse.drilldowns(("*", "*", "*")))
        assert results[("*", "P1", "*")] == 7.5

    def test_rollups(self, warehouse):
        results = dict(warehouse.rollups(("S1", "P1", "s")))
        assert set(results) == {("S1", "*", "s"), ("*", "P1", "*")}

    def test_open_class(self, warehouse):
        opened = warehouse.open_class(("S2", "*", "f"))
        assert opened["upper_bound"] == ("S2", "P1", "f")
        assert len(opened["members"]) == 6


class TestPersistence:
    def test_save_load_roundtrip(self, warehouse, sales_schema, tmp_path):
        tree_path = tmp_path / "tree.qct"
        table_path = tmp_path / "table.csv"
        warehouse.save(tree_path, table_path)
        loaded = QCWarehouse.load(tree_path, table_path, sales_schema)
        assert loaded.point(("S2", "*", "f")) == 9.0
        assert loaded.tree.equivalent_to(warehouse.tree)
        # And the restored warehouse stays maintainable.
        loaded.insert([("S1", "P1", "f", 3.0)])
        rebuilt = build_qctree(loaded.table, loaded.aggregate)
        assert loaded.tree.equivalent_to(rebuilt)


class TestValidation:
    def test_wrong_arity_query(self, warehouse):
        with pytest.raises(SchemaError):
            warehouse.class_of(("S1",))

    def test_multi_measure_warehouse(self, sales_schema):
        wh = QCWarehouse.from_records(
            [("S1", "P1", "s", 6.0), ("S2", "P1", "f", 9.0)],
            sales_schema,
            aggregate=[("sum", "Sale"), "count"],
            index_key=lambda value: value[0],
        )
        assert wh.point(("*", "P1", "*")) == (15.0, 2)
        # Both records share P1, so the root class's bound is (*, P1, *).
        assert dict(wh.iceberg(10)) == {("*", "P1", "*"): (15.0, 2)}


class TestWhatIf:
    def test_what_if_insertion_reports_impact(self, warehouse):
        impact = warehouse.what_if(
            insertions=[("S2", "P2", "f", 4.0)]
        )
        # New classes appear (e.g. the inserted tuple's own class)...
        assert ("S2", "P2", "f") in impact["added"]
        # ...the root class's average drops...
        before, after = impact["changed"][("*", "*", "*")]
        assert before == 9.0 and after == pytest.approx(7.75)
        # ...and the warehouse itself is untouched.
        assert warehouse.table.n_rows == 3
        assert warehouse.point(("*", "*", "*")) == 9.0

    def test_what_if_deletion_reports_impact(self, warehouse):
        impact = warehouse.what_if(deletions=[("S1", "P2", "s", 0.0)])
        assert ("S1", "P2", "s") in impact["removed"]
        assert warehouse.table.n_rows == 3

    def test_what_if_noop(self, warehouse):
        impact = warehouse.what_if()
        assert impact == {"added": {}, "removed": {}, "changed": {}}
