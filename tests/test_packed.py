"""QCTREE/3 packed-snapshot codec: zero-copy attach ≡ frozen tree.

The contract under test: ``pack_snapshot_bytes`` of a frozen serving
snapshot, attached via ``attach_packed`` (shared memory semantics) or
``attach_packed_file`` (mmap), answers every traversal-protocol and
fast-path question identically to the :class:`FrozenQCTree` it was
packed from — and the v3 byte format round-trips through the generic
``load_qctree_from`` loader in both freeze modes.
"""

from __future__ import annotations

import mmap
from array import array

import pytest

from repro.core.cells import ALL
from repro.core.serialize import (
    SerializationError,
    load_qctree_from,
    save_qctree,
    save_qctree_packed,
)
from repro.core.warehouse import QCWarehouse
from repro.shard.pack import (
    PackedQCTree,
    attach_packed,
    attach_packed_file,
    pack_snapshot_bytes,
    packed_to_document,
)

from .conftest import all_cells, approx_equal, make_random_table


@pytest.fixture
def snapshot(sales_table):
    return QCWarehouse(sales_table, aggregate="avg(Sale)").snapshot_view()


@pytest.fixture
def attached(snapshot):
    payload = pack_snapshot_bytes(
        snapshot.tree, snapshot.table, stamp=(3, 7)
    )
    att = attach_packed(payload)
    yield att
    att.release()


def assert_trees_equivalent(packed, frozen, table):
    """Full query-surface parity between a packed and a frozen tree."""
    assert packed.signature() == frozen.signature()
    for cell in all_cells(table):
        assert approx_equal(
            packed._point_query(cell), frozen._point_query(cell)
        ), cell


class TestPackAttachParity:
    def test_attached_is_packed_tree(self, attached):
        assert isinstance(attached.tree, PackedQCTree)
        assert attached.stamp == (3, 7)
        assert attached.nbytes > 0

    def test_point_parity_every_cell(self, attached, snapshot):
        assert_trees_equivalent(
            attached.tree, snapshot.tree, snapshot.table
        )

    def test_structural_stats_match(self, attached, snapshot):
        packed, frozen = attached.tree.stats(), snapshot.tree.stats()
        for key in ("nodes", "links", "classes"):
            assert packed[key] == frozen[key]

    def test_traversal_protocol_matches(self, attached, snapshot):
        packed, frozen = attached.tree, snapshot.tree
        assert sorted(packed.iter_nodes()) == sorted(
            range(len(list(frozen.iter_nodes())))
        )
        assert len(list(packed.iter_links())) == len(
            list(frozen.iter_links())
        )
        assert len(list(packed.iter_class_nodes())) == len(
            list(frozen.iter_class_nodes())
        )

    def test_upper_bounds_match(self, attached, snapshot):
        packed, frozen = attached.tree, snapshot.tree
        packed_ubs = sorted(
            (packed.upper_bound_of(n) for n in packed.iter_class_nodes()),
            key=repr,
        )
        frozen_ubs = sorted(
            (frozen.upper_bound_of(n) for n in frozen.iter_class_nodes()),
            key=repr,
        )
        assert packed_ubs == frozen_ubs

    def test_table_round_trips(self, attached, snapshot):
        table = attached.table
        assert table.n_rows == snapshot.table.n_rows
        assert list(table.rows) == list(snapshot.table.rows)
        assert table.decode_value(0, 0) == snapshot.table.decode_value(0, 0)
        for i in range(table.n_rows):
            assert approx_equal(
                tuple(table.measures[i]), tuple(snapshot.table.measures[i])
            )

    def test_attached_measures_are_read_only(self, attached):
        with pytest.raises(ValueError):
            attached.table.measures[0, 0] = 99.0

    @pytest.mark.parametrize("seed", [1, 7, 23, 61])
    def test_random_tables_parity(self, seed):
        table = make_random_table(seed, n_rows=30)
        snapshot = QCWarehouse(table, aggregate="sum(m)").snapshot_view()
        payload = pack_snapshot_bytes(snapshot.tree, snapshot.table)
        att = attach_packed(payload)
        try:
            assert_trees_equivalent(att.tree, snapshot.tree, table)
        finally:
            att.release()

    def test_release_drops_buffer_exports(self, snapshot):
        payload = bytearray(
            pack_snapshot_bytes(snapshot.tree, snapshot.table)
        )
        att = attach_packed(payload)
        att.tree._point_query((ALL,) * snapshot.table.n_dims)
        att.release()
        del att
        # A writable source buffer can only be resized once every
        # exported view is gone — the hygiene property shm close needs.
        payload += b"x"

    def test_mutable_rebuild_is_equivalent(self, attached, snapshot):
        from repro.core.serialize import _tree_from_document

        rebuilt = _tree_from_document(packed_to_document(attached))
        assert rebuilt.equivalent_to(snapshot.tree)


class TestV3Format:
    def test_header_magic(self, snapshot):
        payload = pack_snapshot_bytes(snapshot.tree, snapshot.table)
        assert payload.startswith(b"QCTREE/3 crc32=")

    def test_deterministic_bytes(self, snapshot):
        one = pack_snapshot_bytes(snapshot.tree, snapshot.table)
        two = pack_snapshot_bytes(snapshot.tree, snapshot.table)
        assert one == two

    def test_save_load_frozen_mode(self, snapshot, tmp_path):
        path = tmp_path / "packed.qct3"
        save_qctree_packed(snapshot.tree, path, table=snapshot.table)
        tree = load_qctree_from(path, freeze=True)
        assert isinstance(tree, PackedQCTree)
        assert tree.signature() == snapshot.tree.signature()

    def test_save_load_mutable_mode(self, snapshot, tmp_path):
        path = tmp_path / "packed.qct3"
        save_qctree_packed(snapshot.tree, path, table=snapshot.table)
        tree = load_qctree_from(path, freeze=False)
        assert not isinstance(tree, PackedQCTree)
        assert tree.equivalent_to(snapshot.tree)

    def test_attach_packed_file_mmap(self, snapshot, tmp_path):
        path = tmp_path / "packed.qct3"
        save_qctree_packed(snapshot.tree, path, table=snapshot.table)
        att = attach_packed_file(path)
        try:
            assert_trees_equivalent(
                att.tree, snapshot.tree, snapshot.table
            )
        finally:
            att.release()

    def test_crc_detects_corruption(self, snapshot, tmp_path):
        path = tmp_path / "packed.qct3"
        save_qctree_packed(snapshot.tree, path, table=snapshot.table)
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0xFF  # flip a bit deep in the body
        path.write_bytes(blob)
        with pytest.raises(SerializationError, match="checksum"):
            attach_packed_file(path)

    def test_truncated_header_rejected(self):
        with pytest.raises(SerializationError):
            attach_packed(b"QCTREE/3 crc32=deadbeef")
        with pytest.raises(SerializationError):
            attach_packed(b"\x00" * 64)

    def test_v2_file_still_loads(self, sales_table, tmp_path):
        warehouse = QCWarehouse(sales_table, aggregate="avg(Sale)")
        path = tmp_path / "legacy.qct"
        save_qctree(warehouse.tree, path)
        tree = load_qctree_from(path)
        assert tree.equivalent_to(warehouse.tree)

    def test_frozen_pack_method(self, snapshot):
        payload = snapshot.tree.pack(snapshot.table, stamp=(1, 2))
        att = attach_packed(payload)
        try:
            assert att.stamp == (1, 2)
            assert att.tree.signature() == snapshot.tree.signature()
        finally:
            att.release()

    def test_attach_from_mmap_object(self, snapshot, tmp_path):
        path = tmp_path / "packed.qct3"
        save_qctree_packed(snapshot.tree, path, table=snapshot.table)
        with open(path, "rb") as fp:
            with mmap.mmap(fp.fileno(), 0, access=mmap.ACCESS_READ) as mm:
                att = attach_packed(mm, verify=True)
                try:
                    cell = (ALL,) * snapshot.table.n_dims
                    assert approx_equal(
                        att.tree._point_query(cell),
                        snapshot.tree._point_query(cell),
                    )
                finally:
                    att.release()


class TestServingSnapshotBridge:
    def test_serving_snapshot_answers(self, attached, snapshot):
        serving = attached.serving_snapshot()
        n = snapshot.table.n_dims
        assert approx_equal(
            serving.point((ALL,) * n), snapshot.point((ALL,) * n)
        )
        assert serving.stamp == (3, 7)

    def test_writes_not_supported_on_packed(self, attached):
        # The packed view is immutable by construction: it has no
        # mutation surface at all.
        assert not hasattr(attached.tree, "insert")
        assert not hasattr(attached.tree, "set_state")


class TestPackedRowsView:
    def test_slice_negative_and_iter(self, attached):
        rows = attached.table.rows
        assert len(rows) == 3
        assert rows[-1] == rows[2]
        assert list(rows[1:]) == [rows[1], rows[2]]
        assert [r for r in rows] == [rows[0], rows[1], rows[2]]
