"""Algebraic laws every aggregate state must obey (satellite of the
segmented-ingest subsystem).

Scatter-gather answering merges per-segment aggregate states in whatever
order the segment list happens to have, and compaction re-merges them
again — so ``merge`` must be a commutative semigroup operation that is
*exact* against computing the state over the union of the underlying
rows.  Deletion additionally relies on ``subtract`` being the exact
inverse of ``merge`` for subtractable aggregates.  These are
hypothesis-checked here for every aggregate in the registry, including
:class:`~repro.cube.aggregates.Variance` (whose moment-form state exists
precisely because the textbook running-variance update is *not*
associative) and :class:`~repro.cube.aggregates.MultiAggregate`.
"""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cube.aggregates import (
    Average,
    Count,
    Max,
    Min,
    MultiAggregate,
    Sum,
    Variance,
    make_aggregate,
    values_close,
)
from repro.cube.schema import Schema
from repro.cube.table import BaseTable

SCHEMA = Schema(dimensions=("D",), measures=("m",))

#: Every registry aggregate, as (pytest id, factory).  MultiAggregate
#: combines all of them so its tuple-of-states plumbing is exercised too.
AGGREGATES = [
    ("count", lambda: Count()),
    ("sum", lambda: Sum("m")),
    ("min", lambda: Min("m")),
    ("max", lambda: Max("m")),
    ("avg", lambda: Average("m")),
    ("var", lambda: Variance("m")),
    ("multi", lambda: MultiAggregate(
        [Count(), Sum("m"), Min("m"), Max("m"), Average("m"), Variance("m")]
    )),
]
IDS = [name for name, _ in AGGREGATES]
FACTORIES = [factory for _, factory in AGGREGATES]

# Bounded, finite measures: the laws hold over the reals; float
# round-off is absorbed by values_close's relative tolerance as long as
# magnitudes stay sane.
measures = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              allow_infinity=False, width=32),
    min_size=1, max_size=12,
)

#: Integer-valued floats: sums and sums-of-squares are exact, so
#: algebraic inverses can be asserted without float tolerance caveats.
exact_measures = st.lists(
    st.integers(min_value=-1000, max_value=1000).map(float),
    min_size=1, max_size=12,
)


def _table(values):
    rows = [(0,)] * len(values)
    return BaseTable.from_encoded(
        rows, [[v] for v in values], SCHEMA, cardinalities=[1]
    )


def _state(aggregate, values):
    table = _table(values)
    return aggregate.state(table, range(len(values)))


def states_close(a, b):
    """States are numbers or (nested) tuples of numbers; compare like
    values, with tolerance — merge order may legally reassociate sums."""
    return values_close(a, b, rel_tol=1e-6, abs_tol=1e-6)


@pytest.mark.parametrize("factory", FACTORIES, ids=IDS)
class TestMergeLaws:
    @given(a=measures, b=measures)
    def test_commutative(self, factory, a, b):
        agg = factory()
        sa, sb = _state(agg, a), _state(agg, b)
        assert states_close(agg.merge(sa, sb), agg.merge(sb, sa))

    @given(a=measures, b=measures, c=measures)
    def test_associative(self, factory, a, b, c):
        agg = factory()
        sa, sb, sc = _state(agg, a), _state(agg, b), _state(agg, c)
        left = agg.merge(agg.merge(sa, sb), sc)
        right = agg.merge(sa, agg.merge(sb, sc))
        assert states_close(left, right)

    @given(a=measures, b=measures)
    def test_merge_is_exact_over_union(self, factory, a, b):
        """merge(state(A), state(B)) == state(A ++ B): the soundness of
        scatter-gather itself — segments hold disjoint row multisets."""
        agg = factory()
        merged = agg.merge(_state(agg, a), _state(agg, b))
        assert states_close(merged, _state(agg, a + b))
        assert values_close(
            agg.value(merged), agg.value(_state(agg, a + b)),
            rel_tol=1e-6, abs_tol=1e-6,
        )

    @given(a=exact_measures, b=exact_measures)
    def test_subtract_inverts_merge(self, factory, a, b):
        """For subtractable aggregates, subtract(merge(x, y), y) == x —
        what sealed-segment deletion relies on.  Exact on
        exactly-representable values; over arbitrary floats the moment
        form (like any running sum) loses low bits to cancellation,
        which is tolerated downstream by values_close, not here."""
        agg = factory()
        if not agg.subtractable:
            pytest.skip(f"{agg.name} is not subtractable")
        sa, sb = _state(agg, a), _state(agg, b)
        assert states_close(agg.subtract(agg.merge(sa, sb), sb), sa)


class TestIdentity:
    """The empty-row-set state is the merge identity where it exists.

    MIN/MAX have no empty state (``min([])`` has no value), which is
    exactly why an emptied class leaves the tree rather than lingering
    as an identity-valued node.
    """

    @pytest.mark.parametrize(
        "factory",
        [lambda: Count(), lambda: Sum("m"), lambda: Average("m"),
         lambda: Variance("m")],
        ids=["count", "sum", "avg", "var"],
    )
    @given(a=measures)
    def test_empty_state_is_identity(self, factory, a):
        agg = factory()
        empty = agg.state(_table([]), [])
        sa = _state(agg, a)
        assert states_close(agg.merge(empty, sa), sa)
        assert states_close(agg.merge(sa, empty), sa)

    @pytest.mark.parametrize("factory", [lambda: Min("m"), lambda: Max("m")],
                             ids=["min", "max"])
    def test_min_max_have_no_empty_state(self, factory):
        agg = factory()
        with pytest.raises(ValueError):
            agg.state(_table([]), [])


class TestValues:
    """States must finalize to the textbook value."""

    @given(a=measures)
    def test_reference_values(self, a):
        table = _table(a)
        rows = range(len(a))
        assert Count().value(Count().state(table, rows)) == len(a)
        assert values_close(
            Sum("m").value(Sum("m").state(table, rows)),
            math.fsum(a), rel_tol=1e-6, abs_tol=1e-6,
        )
        assert Min("m").value(Min("m").state(table, rows)) == min(a)
        assert Max("m").value(Max("m").state(table, rows)) == max(a)
        assert values_close(
            Average("m").value(Average("m").state(table, rows)),
            statistics.fmean(a), rel_tol=1e-6, abs_tol=1e-6,
        )
        assert values_close(
            Variance("m").value(Variance("m").state(table, rows)),
            statistics.pvariance(a), rel_tol=1e-6, abs_tol=1e-3,
        )

    def test_variance_of_empty_and_singleton(self):
        var = Variance("m")
        assert math.isnan(var.value((0, 0.0, 0.0)))
        assert var.value(var.state(_table([3.5]), [0])) == 0.0

    def test_variance_never_negative(self):
        # Catastrophic cancellation (huge mean, tiny spread) must clamp
        # to zero, not leak a negative variance.
        var = Variance("m")
        values = [1e8 + 0.1, 1e8 + 0.2, 1e8 + 0.3]
        assert var.value(var.state(_table(values), range(3))) >= 0.0

    def test_registry_spells(self):
        assert isinstance(make_aggregate("var(m)"), Variance)
        assert isinstance(make_aggregate(("variance", "m")), Variance)
