"""Serving-layer chaos suite: injected faults against the fault-tolerant
server.

Every test drives one failure shape through
:class:`~repro.reliability.faults.ServingFaults` and asserts the exact
recovery the server promises: killed workers are respawned and their
requests failed retryably, each write-pipeline phase recovers (or
degrades to read-only on the last-good snapshot and comes back), and
the admission ledger stays balanced throughout.  The hypothesis test at
the end is the convergence oracle: after an arbitrary sequence of
injected crashes and a final clean write, the server's answers equal a
from-scratch rebuild of the warehouse.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.warehouse import QCWarehouse
from repro.errors import (
    ServerDegradedError,
    ServingError,
    WorkerCrashedError,
    WriteQuarantinedError,
)
from repro.reliability.faults import (
    ChaosMonkey,
    InjectedCrash,
    InjectedFault,
    ServingFaults,
    WorkerKilled,
)
from repro.serving import QCServer, RetryPolicy

from .conftest import all_cells, approx_equal


@pytest.fixture
def warehouse(sales_table):
    return QCWarehouse(sales_table, aggregate="avg(Sale)")


@pytest.fixture
def faults():
    return ServingFaults()


def wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def assert_ledger(server):
    counters = server.stats()["counters"]
    assert counters["submitted"] == (
        counters["completed"] + counters["timeouts"]
        + counters["errors"] + counters["cancelled"]
    ), counters


class TestServingFaults:
    def test_unarmed_site_is_free(self, faults):
        faults.fire("op:point")  # no-op
        assert faults.fired("op:point") == 0

    def test_times_bounds_firings(self, faults):
        faults.arm("op:point", times=2, exc=InjectedFault)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.fire("op:point")
        faults.fire("op:point")  # disarmed after the budget
        assert faults.fired("op:point") == 2

    def test_after_skips_then_fires(self, faults):
        faults.arm("op:point", times=1, after=2, exc=InjectedFault)
        faults.fire("op:point")
        faults.fire("op:point")
        with pytest.raises(InjectedFault):
            faults.fire("op:point")

    def test_delay_only_fault(self, faults):
        faults.arm("op:point", times=1, delay_s=0.01, exc=None)
        start = time.monotonic()
        faults.fire("op:point")
        assert time.monotonic() - start >= 0.01
        assert faults.fired("op:point") == 1

    def test_persistent_fault_until_disarmed(self, faults):
        faults.arm("op:point", times=None, exc=InjectedFault)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                faults.fire("op:point")
        faults.disarm("op:point")
        faults.fire("op:point")
        assert faults.fired("op:point") == 3

    def test_kill_next_worker_arms_worker_site(self, faults):
        faults.kill_next_worker()
        with pytest.raises(WorkerKilled):
            faults.fire("worker")


class TestWorkerSupervision:
    def test_killed_worker_fails_request_and_is_respawned(
            self, warehouse, faults):
        with QCServer(warehouse, workers=2, faults=faults,
                      supervise_interval=0.01) as server:
            faults.kill_next_worker()
            with pytest.raises(WorkerCrashedError):
                server.point(("S2", "*", "f"))
            assert wait_until(
                lambda: server.worker_health()["alive"] == 2
            ), server.worker_health()
            health = server.worker_health()
            assert health["crashes"] == 1
            assert health["restarts"] == 1
            # The respawned pool serves normally.
            assert server.point(("S2", "*", "f")) == 9.0
            assert_ledger(server)
            assert server.health()["status"] == "ok"

    def test_every_worker_killed_pool_recovers(self, warehouse, faults):
        with QCServer(warehouse, workers=3, faults=faults,
                      supervise_interval=0.01) as server:
            faults.kill_next_worker(times=3)
            failures = 0
            for _ in range(3):
                try:
                    server.point(("S2", "*", "f"))
                except WorkerCrashedError:
                    failures += 1
            assert failures == 3
            assert wait_until(
                lambda: server.worker_health()["alive"] == 3
            )
            assert server.point(("S2", "*", "f")) == 9.0
            assert_ledger(server)

    def test_unsupervised_pool_shrinks_but_never_hangs_callers(
            self, warehouse, faults):
        """Without the supervisor the pool stays shrunk — but the crash
        is still counted and the claimed request still fails fast
        instead of silently hanging (the old bug)."""
        with QCServer(warehouse, workers=2, faults=faults,
                      supervised=False) as server:
            faults.kill_next_worker()
            with pytest.raises(WorkerCrashedError):
                server.point(("S2", "*", "f"))
            assert wait_until(
                lambda: server.worker_health()["alive"] == 1
            )
            health = server.worker_health()
            assert health["crashes"] == 1
            assert health["restarts"] == 0
            assert not health["supervised"]
            # The surviving worker still serves.
            assert server.point(("S2", "*", "f")) == 9.0
            assert_ledger(server)

    def test_restart_budget_bounds_respawn_rate(self, warehouse, faults):
        with QCServer(warehouse, workers=1, faults=faults,
                      supervise_interval=0.01) as server:
            server.MAX_RESTARTS_PER_WINDOW = 0  # exhaust the budget
            faults.kill_next_worker()
            with pytest.raises(WorkerCrashedError):
                server.point(("S2", "*", "f"))
            time.sleep(0.1)  # several supervisor scans
            assert server.worker_health()["alive"] == 0
            assert server.worker_health()["restarts"] == 0
            server.MAX_RESTARTS_PER_WINDOW = 32  # budget restored
            assert wait_until(
                lambda: server.worker_health()["alive"] == 1
            )
            assert server.point(("S2", "*", "f")) == 9.0

    def test_injected_op_error_does_not_kill_worker(self, warehouse, faults):
        """Op-level faults are request errors, not worker deaths."""
        with QCServer(warehouse, workers=1, faults=faults) as server:
            faults.arm("op:point", times=1, exc=InjectedFault)
            with pytest.raises(InjectedFault):
                server.point(("S2", "*", "f"))
            health = server.worker_health()
            assert health["alive"] == 1
            assert health["crashes"] == 0
            assert server.point(("S2", "*", "f")) == 9.0
            assert_ledger(server)


class TestWritePipelineRecovery:
    RECORD = ("S3", "P1", "s", 5.0)

    def test_maintain_crash_leaves_answers_unchanged(
            self, warehouse, faults):
        with QCServer(warehouse, workers=2, faults=faults) as server:
            before = server.point(("*", "*", "*"))
            faults.arm("write:maintain", times=1, exc=InjectedCrash)
            with pytest.raises(InjectedCrash):
                server.insert([self.RECORD])
            counters = server.stats()["counters"]
            assert counters["writes_failed"] == 1
            assert counters["snapshot_swaps"] == 0
            assert server.point(("*", "*", "*")) == before
            assert not server.write_degraded
            # The fault cleared: the same batch now goes through.
            server.insert([self.RECORD])
            assert server.point(("S3", "P1", "s")) == 5.0

    def test_refreeze_crash_falls_back_to_full_recompile(
            self, warehouse, faults):
        with QCServer(warehouse, workers=2, faults=faults) as server:
            faults.arm("write:refreeze", times=1, exc=InjectedCrash)
            server.insert([self.RECORD])  # recovered transparently
            counters = server.stats()["counters"]
            assert counters["refreeze_fallbacks"] == 1
            assert counters["snapshot_swaps"] == 1
            assert server.point(("S3", "P1", "s")) == 5.0
            assert server.health()["status"] == "ok"

    def test_publish_crash_retries_from_fresh_snapshot(
            self, warehouse, faults):
        with QCServer(warehouse, workers=2, faults=faults) as server:
            faults.arm("write:publish", times=1, exc=InjectedCrash)
            server.insert([self.RECORD])
            counters = server.stats()["counters"]
            assert counters["publish_retries"] == 1
            assert server.point(("S3", "P1", "s")) == 5.0
            assert server.health()["status"] == "ok"

    def test_warm_crash_is_absorbed(self, warehouse, faults):
        with QCServer(warehouse, workers=2, faults=faults) as server:
            faults.arm("write:warm", times=1, exc=InjectedCrash)
            server.insert([self.RECORD])
            counters = server.stats()["counters"]
            assert counters["warm_failures"] == 1
            assert counters["snapshot_swaps"] == 1
            assert server.point(("S3", "P1", "s")) == 5.0

    def test_persistent_publish_fault_degrades_then_recovers(
            self, warehouse, faults):
        with QCServer(warehouse, workers=2, faults=faults) as server:
            before = server.point(("*", "*", "*"))
            faults.arm("write:publish", times=None, exc=InjectedCrash)
            with pytest.raises(ServerDegradedError):
                server.insert([self.RECORD])
            assert server.write_degraded
            assert server.degraded_reason["phase"] == "publish"
            assert server.stats()["counters"]["degraded_entered"] == 1
            # Readers keep the last-good snapshot: old answers, no errors.
            assert server.point(("*", "*", "*")) == before
            assert server.point(("S3", "P1", "s")) is None
            # Writes keep probing and failing while the fault persists.
            with pytest.raises(ServerDegradedError):
                server.insert([("S3", "P2", "w", 4.0)])
            assert server.recover() is False
            # Fault clears: recovery publishes the stuck write.
            faults.disarm("write:publish")
            assert server.recover() is True
            assert not server.write_degraded
            assert server.stats()["counters"]["degraded_exited"] == 1
            assert server.point(("S3", "P1", "s")) == 5.0
            assert server.health()["status"] == "ok"

    def test_degraded_exit_via_next_write_probe(self, warehouse, faults):
        with QCServer(warehouse, workers=2, faults=faults) as server:
            faults.arm("write:refreeze", times=2, exc=InjectedCrash)
            with pytest.raises(ServerDegradedError):
                server.insert([self.RECORD])
            assert server.write_degraded
            # The fault budget is spent, so the next write's implicit
            # probe heals the server and then applies the write.
            server.insert([("S3", "P2", "w", 4.0)])
            assert not server.write_degraded
            assert server.point(("S3", "P1", "s")) == 5.0
            assert server.point(("S3", "P2", "w")) == 4.0

    def test_repeated_maintain_crash_quarantines_batch(
            self, warehouse, faults):
        with QCServer(warehouse, workers=1, faults=faults,
                      quarantine_after=2) as server:
            faults.arm("write:maintain", times=2, exc=InjectedCrash)
            batch = [self.RECORD]
            for _ in range(2):
                with pytest.raises(InjectedCrash):
                    server.insert(batch)
            counters = server.stats()["counters"]
            assert counters["writes_quarantined"] == 1
            # The fault is gone, but the batch stays quarantined with a
            # typed error instead of re-crashing the writer.
            with pytest.raises(WriteQuarantinedError):
                server.insert(batch)
            assert server.stats()["degraded"]["quarantined_batches"] == 1
            # Other batches are unaffected.
            server.insert([("S3", "P2", "w", 4.0)])
            # An operator can lift the quarantine.
            assert server.lift_quarantine() == 1
            server.insert(batch)
            assert server.point(("S3", "P1", "s")) == 5.0

    def test_maintain_success_resets_quarantine_count(
            self, warehouse, faults):
        with QCServer(warehouse, workers=1, faults=faults,
                      quarantine_after=2) as server:
            batch = [self.RECORD]
            faults.arm("write:maintain", times=1, exc=InjectedCrash)
            with pytest.raises(InjectedCrash):
                server.insert(batch)
            server.insert(batch)  # success clears the strike count
            server.delete(batch)
            faults.arm("write:maintain", times=1, exc=InjectedCrash)
            with pytest.raises(InjectedCrash):
                server.insert(batch)
            # One strike again, not two: no quarantine.
            assert server.stats()["counters"]["writes_quarantined"] == 0
            server.insert(batch)


class TestChaosMonkey:
    def test_seeded_chaos_run_keeps_serving_and_converges(self, warehouse):
        faults = ServingFaults()
        retry = RetryPolicy(max_attempts=6)
        record = ("S3", "P1", "s", 5.0)
        with QCServer(warehouse, workers=2, faults=faults,
                      supervise_interval=0.01,
                      quarantine_after=100) as server:
            with ChaosMonkey(faults, seed=1234, interval_s=0.002) as monkey:
                outcomes = {"ok": 0, "failed": 0}
                for i in range(200):
                    try:
                        retry.call(server.point, ("S2", "*", "f"))
                        outcomes["ok"] += 1
                    except Exception:
                        outcomes["failed"] += 1
                    if i % 50 == 25:
                        try:
                            server.insert([record])
                            server.delete([record])
                        except (ServingError, InjectedCrash):
                            server.recover()
            assert monkey.events, "the monkey never injected anything"
            # Faults are disarmed; the server converges back to health.
            assert server.recover() is True
            server.insert([record])
            assert server.point(("S3", "P1", "s")) == 5.0
            assert outcomes["ok"] > 0
            assert_ledger(server)
            assert wait_until(
                lambda: server.worker_health()["alive"] == 2
            )
            assert server.health()["status"] == "ok"


# -- convergence oracle -------------------------------------------------------

RECORD_POOL = [
    ("S1", "P1", "s", 3.0),
    ("S3", "P2", "w", 5.0),
    ("S2", "P2", "f", 7.0),
    ("S3", "P1", "s", 11.0),
]

PHASES = (None, "maintain", "refreeze", "publish", "warm")

write_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(RECORD_POOL) - 1),
        st.sampled_from(PHASES),
        st.integers(min_value=1, max_value=2),  # fault firings
    ),
    min_size=1, max_size=5,
)


@settings(max_examples=25, deadline=None)
@given(steps=write_steps)
def test_chaos_writes_converge_to_fresh_rebuild(steps):
    """After any sequence of injected write-pipeline crashes, reads keep
    answering from a coherent snapshot, and once the faults clear the
    served answers equal a from-scratch rebuild of the warehouse."""
    from repro.cube.schema import Schema
    from repro.cube.table import BaseTable

    schema = Schema(dimensions=("Store", "Product", "Season"),
                    measures=("Sale",))
    table = BaseTable.from_records(
        [
            ("S1", "P1", "s", 6.0),
            ("S1", "P2", "s", 12.0),
            ("S2", "P1", "f", 9.0),
        ],
        schema,
    )
    warehouse = QCWarehouse(table, aggregate="avg(Sale)")
    faults = ServingFaults()
    with QCServer(warehouse, workers=2, faults=faults,
                  quarantine_after=100) as server:
        for record_ix, phase, times in steps:
            if phase is not None:
                faults.arm(f"write:{phase}", times=times, exc=InjectedCrash)
            try:
                server.insert([RECORD_POOL[record_ix]])
            except (InjectedCrash, ServingError):
                pass
            # Reads never error mid-chaos: they answer from the
            # published snapshot, whole or stale but never torn.
            server.point(("*", "*", "*"))
            faults.clear()
        assert server.recover() is True
        server.insert([("S9", "P9", "w", 2.0)])  # final clean write
        assert server.point(("S9", "P9", "w")) == 2.0

        # Oracle: rebuild the warehouse from the final table state.
        oracle = QCWarehouse(warehouse.table, aggregate="avg(Sale)")
        for cell in all_cells(warehouse.table):
            raw = warehouse.table.decode_cell(cell)
            assert approx_equal(server.point(raw), oracle.point(raw))
        assert sorted(server.iceberg(6.0)) == sorted(oracle.iceberg(6.0))
        assert_ledger(server)
