"""Tests for iceberg queries (§4.3): pure via the measure index, and the
two constrained strategies (filter / mark)."""

import random

import pytest

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.core.iceberg import MeasureIndex, constrained_iceberg, pure_iceberg
from repro.core.range_query import range_query
from repro.cube.lattice import full_cube
from repro.errors import QueryError
from tests.conftest import make_random_table


class TestMeasureIndex:
    def test_indexes_every_class(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        index = MeasureIndex(tree)
        assert len(index) == tree.n_classes

    def test_nodes_satisfying_operators(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        index = MeasureIndex(tree)
        values = lambda nodes: sorted(tree.value_at(n) for n in nodes)
        assert values(index.nodes_satisfying(9, ">=")) == [9.0, 9.0, 9.0, 12.0]
        assert values(index.nodes_satisfying(9, ">")) == [12.0]
        assert values(index.nodes_satisfying(7.5, "<=")) == [6.0, 7.5]
        assert values(index.nodes_satisfying(7.5, "<")) == [6.0]

    def test_unknown_operator_rejected(self, sales_table):
        tree = build_qctree(sales_table, "count")
        with pytest.raises(QueryError):
            MeasureIndex(tree).nodes_satisfying(1, "==")

    def test_multi_aggregate_needs_key(self, sales_table):
        tree = build_qctree(sales_table, [("sum", "Sale"), "count"])
        with pytest.raises(QueryError):
            MeasureIndex(tree)
        index = MeasureIndex(tree, key=lambda v: v[0])
        assert len(index) == tree.n_classes

    def test_add_discard(self, sales_table):
        tree = build_qctree(sales_table, "count")
        index = MeasureIndex(tree)
        node = next(tree.iter_class_nodes())
        old_key = tree.value_at(node)
        index.discard(node, old_key)
        assert len(index) == tree.n_classes - 1
        index.add(node)
        assert len(index) == tree.n_classes


class TestPureIceberg:
    def test_paper_example(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        result = pure_iceberg(tree, 9)
        decoded = {
            sales_table.decode_cell(ub): value for ub, value in result
        }
        assert decoded == {
            ("*", "*", "*"): 9.0,
            ("S1", "*", "s"): 9.0,
            ("S1", "P2", "s"): 12.0,
            ("S2", "P1", "f"): 9.0,
        }

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_class_scan(self, seed):
        table = make_random_table(seed)
        tree = build_qctree(table, ("sum", "m"))
        threshold = 10.0
        result = dict(pure_iceberg(tree, threshold))
        expected = {
            ub: value
            for ub, value in tree.class_upper_bounds().items()
            if value >= threshold
        }
        assert result == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_classes_stand_for_all_member_cells(self, seed):
        # Every *cell* whose aggregate clears the threshold belongs to a
        # returned class, and vice versa (class value == member value).
        table = make_random_table(seed + 30, n_dims=3, cardinality=3)
        tree = build_qctree(table, "count")
        threshold = 2
        satisfying_ubs = {ub for ub, _ in pure_iceberg(tree, threshold)}
        oracle = full_cube(table, "count")
        from repro.cube.lattice import closure

        for cell, value in oracle.items():
            assert (value >= threshold) == (
                closure(table, cell) in satisfying_ubs
            )

    def test_reused_index(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        index = MeasureIndex(tree)
        assert pure_iceberg(tree, 9, index=index) == pure_iceberg(tree, 9)


class TestConstrainedIceberg:
    @pytest.mark.parametrize("strategy", ["filter", "mark"])
    def test_matches_range_plus_filter_oracle(self, strategy):
        for seed in range(12):
            table = make_random_table(seed)
            tree = build_qctree(table, ("sum", "m"))
            rng = random.Random(seed)
            spec = []
            for j in range(table.n_dims):
                cj = table.cardinality(j)
                roll = rng.random()
                if roll < 0.4:
                    spec.append(ALL)
                else:
                    spec.append(
                        sorted(rng.sample(range(cj), min(cj, rng.randint(1, 3))))
                    )
            threshold = 15.0
            expected = {
                cell: value
                for cell, value in range_query(tree, spec).items()
                if value >= threshold
            }
            got = constrained_iceberg(
                tree, spec, threshold, strategy=strategy
            )
            assert got == expected, f"seed {seed} strategy {strategy}"

    def test_strategies_agree(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        spec = ([0, 1], ALL, ALL)
        a = constrained_iceberg(tree, spec, 9, strategy="filter")
        b = constrained_iceberg(tree, spec, 9, strategy="mark")
        assert a == b

    def test_mark_with_no_satisfying_classes(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        assert constrained_iceberg(
            tree, (ALL, ALL, ALL), 1e9, strategy="mark"
        ) == {}

    def test_unknown_strategy_rejected(self, sales_table):
        tree = build_qctree(sales_table, "count")
        with pytest.raises(QueryError):
            constrained_iceberg(tree, (ALL, ALL, ALL), 1, strategy="wat")

    def test_below_threshold_operator(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        got = constrained_iceberg(tree, (ALL, [0, 1], ALL), 7.5, op="<=")
        decoded = {sales_table.decode_cell(c): v for c, v in got.items()}
        assert decoded == {("*", "P1", "*"): 7.5}
