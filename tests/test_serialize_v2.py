"""Tests for the QCTREE/2 snapshot format: checksums, atomicity, offsets,
the load_qctree_from error contract, and v1 backward compatibility."""

import json
import os
import random
import zlib

import pytest

from repro.core.construct import build_qctree
from repro.core.point_query import point_query
from repro.core.serialize import (
    dumps_qctree,
    load_qctree_from,
    loads_qctree,
    save_qctree,
)
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from repro.errors import SerializationError
from repro.reliability.faults import InjectedCrash, count_io, crash_on_io
from tests.conftest import all_cells, approx_equal, make_random_table

# The exact QCTREE/1 bytes the pre-checksum code wrote for the paper's
# Figure 1 table under avg(Sale) — pinned so old snapshots keep loading.
V1_FIXTURE = (
    'QCTREE/1\n{"n_dims": 3, "dim_names": ["Store", "Product", "Season"], '
    '"aggregate": "avg(Sale)", "nodes": [[-1, null, -1, [27.0, 3]], '
    '[0, 0, 0, null], [1, 0, 1, null], [2, 1, 2, [6.0, 1]], '
    '[1, 1, 1, null], [2, 1, 4, [12.0, 1]], [2, 1, 1, [18.0, 2]], '
    '[0, 1, 0, null], [1, 0, 7, null], [2, 0, 8, [9.0, 1]], '
    '[1, 0, 0, [15.0, 2]]], "links": [[0, 2, 1, 6], [0, 2, 0, 9], '
    '[0, 1, 1, 4], [10, 2, 1, 3], [10, 2, 0, 9]]}'
)


def rewrap_v2(text: str, mutate):
    """Apply ``mutate`` to the decoded document and re-sign the payload."""
    _, payload = text.split("\n", 1)
    doc = json.loads(payload)
    mutate(doc)
    new_payload = json.dumps(doc)
    crc = zlib.crc32(new_payload.encode("utf-8")) & 0xFFFFFFFF
    header = (f"QCTREE/2 crc32={crc:08x} nodes={len(doc['nodes'])} "
              f"links={len(doc['links'])}")
    return header + "\n" + new_payload


class TestFormatV2:
    def test_header_carries_crc_and_counts(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        text = dumps_qctree(tree)
        header, payload = text.split("\n", 1)
        assert header.startswith("QCTREE/2 crc32=")
        crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        assert f"crc32={crc:08x}" in header
        assert f"nodes={tree.n_nodes}" in header
        assert f"links={tree.n_links}" in header

    def test_single_character_corruption_detected(self, sales_table):
        text = dumps_qctree(build_qctree(sales_table, ("avg", "Sale")))
        header_end = text.index("\n") + 1
        # Flip one payload digit: 6.0 -> 7.0 style silent corruption.
        pos = text.index("27.0")
        mutated = text[:pos] + "47.0" + text[pos + 4:]
        assert mutated != text and len(mutated) == len(text)
        with pytest.raises(SerializationError, match="checksum mismatch"):
            loads_qctree(mutated)
        # The message names the payload byte range.
        with pytest.raises(SerializationError, match=str(header_end)):
            loads_qctree(mutated)

    def test_truncation_detected(self, sales_table):
        text = dumps_qctree(build_qctree(sales_table, "count"))
        for cut in (len(text) // 2, len(text) - 1):
            with pytest.raises(SerializationError):
                loads_qctree(text[:cut])

    def test_missing_payload_reports_offset(self, sales_table):
        text = dumps_qctree(build_qctree(sales_table, "count"))
        header = text.split("\n", 1)[0]
        with pytest.raises(SerializationError, match="offset"):
            loads_qctree(header + "\n")

    def test_count_mismatch_detected(self, sales_table):
        text = dumps_qctree(build_qctree(sales_table, "count"))
        header, payload = text.split("\n", 1)
        lied = header.replace("nodes=", "nodes=9", 1)
        with pytest.raises(SerializationError, match="count mismatch"):
            loads_qctree(lied + "\n" + payload)

    def test_malformed_header_rejected(self, sales_table):
        text = dumps_qctree(build_qctree(sales_table, "count"))
        _, payload = text.split("\n", 1)
        with pytest.raises(SerializationError, match="header"):
            loads_qctree("QCTREE/2 crc32=zz nodes=1\n" + payload)

    def test_consistent_resigned_corruption_caught_by_loader(self, sales_table):
        # A forged checksum over a broken document must still fail.
        text = dumps_qctree(build_qctree(sales_table, "count"))
        broken = rewrap_v2(text, lambda doc: doc["nodes"].__setitem__(
            0, [0, 3, -1, None]))
        with pytest.raises(SerializationError, match="root"):
            loads_qctree(broken)


class TestLoadFromPathContract:
    """load_qctree_from must raise SerializationError naming the path —
    never leak JSONDecodeError / KeyError / UnicodeDecodeError."""

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.qct"
        path.write_text("")
        with pytest.raises(SerializationError, match="empty.qct"):
            load_qctree_from(path)

    def test_truncated_file(self, tmp_path, sales_table):
        text = dumps_qctree(build_qctree(sales_table, "count"))
        path = tmp_path / "torn.qct"
        path.write_text(text[: len(text) // 3])
        with pytest.raises(SerializationError, match="torn.qct"):
            load_qctree_from(path)

    def test_non_json_file(self, tmp_path):
        path = tmp_path / "notjson.qct"
        path.write_text("QCTREE/1\n{this is not json")
        with pytest.raises(SerializationError, match="notjson.qct"):
            load_qctree_from(path)

    def test_binary_garbage(self, tmp_path):
        path = tmp_path / "binary.qct"
        path.write_bytes(b"\x00\xff\xfe\x01QCTREE\x80\x81")
        with pytest.raises(SerializationError, match="binary.qct"):
            load_qctree_from(path)

    def test_missing_keys_named_path(self, tmp_path):
        path = tmp_path / "keys.qct"
        path.write_text("QCTREE/1\n" + json.dumps({"n_dims": 2}))
        with pytest.raises(SerializationError, match="keys.qct"):
            load_qctree_from(path)

    def test_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_qctree_from(tmp_path / "nope.qct")


class TestV1BackwardCompatibility:
    def test_pinned_v1_fixture_loads(self, sales_table):
        tree = loads_qctree(V1_FIXTURE)
        assert tree.dim_names == ("Store", "Product", "Season")
        assert tree.aggregate.name == "avg(Sale)"
        fresh = build_qctree(sales_table, ("avg", "Sale"))
        assert tree.equivalent_to(fresh)

    def test_pinned_v1_fixture_answers_queries(self, sales_table):
        tree = loads_qctree(V1_FIXTURE)
        fresh = build_qctree(sales_table, ("avg", "Sale"))
        for cell in all_cells(sales_table):
            assert approx_equal(point_query(tree, cell),
                                point_query(fresh, cell))

    def test_v1_file_loads_from_disk(self, tmp_path):
        path = tmp_path / "legacy.qct"
        path.write_text(V1_FIXTURE)
        tree = load_qctree_from(path)
        assert tree.n_classes == 6

    def test_resaving_v1_produces_v2(self, tmp_path):
        path = tmp_path / "legacy.qct"
        path.write_text(V1_FIXTURE)
        tree = load_qctree_from(path)
        save_qctree(tree, path)
        assert path.read_text().startswith("QCTREE/2 ")
        assert load_qctree_from(path).equivalent_to(tree)


class TestAtomicSave:
    def test_successful_save_is_loadable(self, tmp_path, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        path = tmp_path / "tree.qct"
        save_qctree(tree, path)
        assert load_qctree_from(path).equivalent_to(tree)
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp." in p]
        assert leftovers == []

    def test_crash_at_every_io_step_preserves_old_snapshot(
            self, tmp_path, sales_table):
        old_tree = build_qctree(sales_table, "count")
        path = str(tmp_path / "tree.qct")
        save_qctree(old_tree, path)
        old_bytes = open(path, "rb").read()
        new_tree = build_qctree(sales_table, ("sum", "Sale"))

        total_ops = count_io(lambda: save_qctree(new_tree, path))
        assert total_ops >= 4  # open, write, flush/fsync, close, replace
        for fail_after in range(total_ops):
            # Reset to the old snapshot state before each injected crash.
            with open(path, "wb") as fp:
                fp.write(old_bytes)
            with crash_on_io(fail_after) as clock:
                with pytest.raises(InjectedCrash):
                    save_qctree(new_tree, path)
            on_disk = open(path, "rb").read()
            committed = any(
                label.startswith("replace:") for label in clock.trace
            )
            if committed:
                assert load_qctree_from(path).equivalent_to(new_tree)
            else:
                assert on_disk == old_bytes
                assert load_qctree_from(path).equivalent_to(old_tree)

    def test_crash_on_first_save_leaves_no_file(self, tmp_path, sales_table):
        tree = build_qctree(sales_table, "count")
        path = str(tmp_path / "fresh.qct")
        with crash_on_io(1):
            with pytest.raises(InjectedCrash):
                save_qctree(tree, path)
        assert not os.path.exists(path)


AGGREGATE_SPECS = [
    "count",
    ("sum", "m"),
    ("min", "m"),
    ("max", "m"),
    ("avg", "m"),
    [("sum", "m"), "count"],
    [("avg", "m"), ("max", "m"), "count"],
]


class TestRoundTripProperty:
    """Round-trip over randomly generated trees: random dimensionality,
    cardinality, row counts, and every registry aggregate shape."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_tree_roundtrip(self, seed):
        rng = random.Random(seed * 7919)
        table = make_random_table(
            seed,
            n_dims=rng.randint(1, 5),
            cardinality=rng.randint(1, 6),
            n_rows=rng.randint(1, 25),
        )
        spec = rng.choice(AGGREGATE_SPECS)
        tree = build_qctree(table, spec)
        clone = loads_qctree(dumps_qctree(tree))
        assert clone.signature() == tree.signature()
        assert clone.aggregate.name == tree.aggregate.name
        assert clone.dim_names == tree.dim_names

    @pytest.mark.parametrize("seed", range(10))
    def test_random_tree_queries_survive(self, seed, tmp_path):
        rng = random.Random(seed + 424242)
        table = make_random_table(seed, n_dims=rng.randint(1, 3),
                                  cardinality=rng.randint(1, 4),
                                  n_rows=rng.randint(1, 15))
        spec = rng.choice(AGGREGATE_SPECS)
        tree = build_qctree(table, spec)
        path = tmp_path / f"tree-{seed}.qct"
        save_qctree(tree, path)
        clone = load_qctree_from(path)
        for cell in all_cells(table):
            assert approx_equal(point_query(tree, cell),
                                point_query(clone, cell))

    def test_string_labels_roundtrip(self):
        schema = Schema(dimensions=("City", "Kind"), measures=("v",))
        table = BaseTable.from_records(
            [("Oslo", "a", 1.0), ("Bergen", "b", 2.0), ("Oslo", "b", 3.0)],
            schema,
        )
        tree = build_qctree(table, ("sum", "v"))
        clone = loads_qctree(dumps_qctree(tree))
        assert clone.equivalent_to(tree)
