"""Tests for the Dwarf baseline: construction, coalescing, and queries."""

import random

import pytest

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.core.range_query import range_query
from repro.cube.lattice import full_cube
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from repro.dwarf.build import build_dwarf
from repro.dwarf.query import dwarf_point_query, dwarf_range_query
from repro.errors import QueryError
from tests.conftest import all_cells, approx_equal, make_random_table


class TestConstruction:
    def test_empty_table(self):
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        table = BaseTable.from_encoded([], [], schema, cardinalities=[2, 2])
        dwarf = build_dwarf(table, "count")
        assert dwarf.root is None
        assert dwarf_point_query(dwarf, (ALL, ALL)) is None

    def test_single_tuple_coalesces_everything(self):
        schema = Schema(dimensions=("A", "B", "C"), measures=("m",))
        table = BaseTable.from_encoded([(0, 1, 2)], [[5.0]], schema)
        dwarf = build_dwarf(table, "count")
        # One node per level: the ALL cell shares the single value's
        # sub-dwarf everywhere.
        assert dwarf.n_nodes == 3
        assert dwarf.n_cells == 3

    def test_levels_form_layers(self):
        table = make_random_table(3, n_dims=3)
        dwarf = build_dwarf(table, "count")
        root = dwarf.node(dwarf.root)
        assert root.level == 0
        for node in dwarf.iter_nodes():
            if node.level < table.n_dims - 1:
                for child in node.cells.values():
                    assert dwarf.node(child).level == node.level + 1
                assert dwarf.node(node.all_cell).level == node.level + 1

    def test_suffix_coalescing_shares_identical_partitions(self):
        # Two stores selling the same single product: their sub-dwarfs
        # describe different tuples, but each single-tuple partition
        # coalesces its ALL cell with its value cell.
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        table = BaseTable.from_encoded(
            [(0, 7), (1, 7)], [[1.0], [2.0]], schema
        )
        dwarf = build_dwarf(table, "count")
        root = dwarf.node(dwarf.root)
        for child_id in root.cells.values():
            child = dwarf.node(child_id)
            assert child.all_cell == child.cells[7]

    def test_stats(self):
        table = make_random_table(5)
        dwarf = build_dwarf(table, "count")
        stats = dwarf.stats()
        assert stats["nodes"] == dwarf.n_nodes
        assert stats["all_cells"] == dwarf.n_nodes
        assert stats["cells"] == sum(len(n.cells) for n in dwarf.iter_nodes())


class TestPointQueries:
    @pytest.mark.parametrize("seed", range(20))
    def test_exhaustive_against_oracle(self, seed):
        table = make_random_table(seed)
        dwarf = build_dwarf(table, ("sum", "m"))
        oracle = full_cube(table, ("sum", "m"))
        for cell in all_cells(table):
            assert approx_equal(
                dwarf_point_query(dwarf, cell), oracle.get(cell)
            ), f"cell {cell} rows {table.rows}"

    def test_wrong_arity_rejected(self):
        table = make_random_table(0, n_dims=2)
        dwarf = build_dwarf(table, "count")
        with pytest.raises(QueryError):
            dwarf_point_query(dwarf, (ALL,))

    def test_every_query_touches_n_levels(self):
        """Dwarf's access pattern: one node per dimension, always."""
        table = make_random_table(1, n_dims=4)
        dwarf = build_dwarf(table, "count")
        # (*,*,*,*) follows ALL cells through all four levels.
        assert dwarf_point_query(dwarf, (ALL,) * 4) == table.n_rows


class TestRangeQueries:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_qctree_range(self, seed):
        table = make_random_table(seed)
        dwarf = build_dwarf(table, ("sum", "m"))
        tree = build_qctree(table, ("sum", "m"))
        rng = random.Random(seed)
        for _ in range(4):
            spec = []
            for j in range(table.n_dims):
                cj = table.cardinality(j)
                roll = rng.random()
                if roll < 0.3:
                    spec.append(ALL)
                else:
                    spec.append(
                        sorted(rng.sample(range(cj), min(cj, rng.randint(1, 3))))
                    )
            a = dwarf_range_query(dwarf, spec)
            b = range_query(tree, spec)
            assert set(a) == set(b)
            for cell in a:
                assert approx_equal(a[cell], b[cell])

    def test_range_on_empty_dwarf(self):
        schema = Schema(dimensions=("A",), measures=("m",))
        table = BaseTable.from_encoded([], [], schema, cardinalities=[2])
        dwarf = build_dwarf(table, "count")
        assert dwarf_range_query(dwarf, ([0, 1],)) == {}


class TestSizeBehaviour:
    def test_correlated_data_coalesces_more(self):
        """Functional dependencies shrink the Dwarf via suffix coalescing."""
        rng = random.Random(0)
        schema = Schema(dimensions=("A", "B", "C"), measures=("m",))
        n = 60
        # B functionally depends on A: strong coalescing.
        correlated = [(a := rng.randrange(8), a % 4, rng.randrange(4))
                      for _ in range(n)]
        independent = [
            (rng.randrange(8), rng.randrange(4), rng.randrange(4))
            for _ in range(n)
        ]
        d1 = build_dwarf(
            BaseTable.from_encoded(correlated, [[1.0]] * n, schema), "count"
        )
        d2 = build_dwarf(
            BaseTable.from_encoded(independent, [[1.0]] * n, schema), "count"
        )
        assert d1.n_cells < d2.n_cells
