"""Incremental refreeze: delta recording and ``FrozenQCTree.patch``.

The contract under test: a patched frozen view is *observationally
identical* to a from-scratch ``freeze()`` of the mutated dict tree —
same signature (upper bounds, aggregates, links), same answers for
every query family — no matter how mutations chain, which fallback
path fires, or how often compaction reclaims spare capacity.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.core.maintenance import (
    MaintenanceDelta,
    apply_deletions,
    apply_insertions,
)
from repro.core.point_query import point_query
from repro.core.warehouse import QCWarehouse
from tests.conftest import all_cells, approx_equal, make_random_table


def _build(seed, **kwargs):
    table = make_random_table(seed, **kwargs)
    tree = build_qctree(table, ("sum", "m"))
    return table, tree


def _random_record(table, rng, fresh_labels=False):
    """A raw single-tuple record; ``fresh_labels`` mints unseen labels."""
    cell = []
    for dim in range(table.n_dims):
        card = table.cardinality(dim)
        if fresh_labels and rng.random() < 0.5:
            cell.append(card + rng.randrange(3))
        else:
            cell.append(rng.randrange(card))
    raw = tuple(
        table.decode_value(d, c) if c < table.cardinality(d) else c
        for d, c in enumerate(cell)
    )
    return raw + (float(rng.randint(0, 9)),)


def _mutate_once(tree, table, rng, op=None):
    """One recorded random mutation; returns ``(table, delta)``."""
    if op is None:
        op = rng.choice(("insert", "insert_new", "delete"))
    tree.begin_delta()
    try:
        if op == "delete" and table.rows:
            i = rng.randrange(len(table.rows))
            rec = table.decode_cell(table.rows[i]) + tuple(table.measures[i])
            table = apply_deletions(tree, table, [rec])
        else:
            rec = _random_record(table, rng, fresh_labels=op == "insert_new")
            table = apply_insertions(tree, table, [rec])
    finally:
        delta = tree.end_delta()
    return table, delta


def _assert_equivalent(patched, tree, table):
    """Patched view vs from-scratch compile: structure and answers."""
    full = tree.freeze()
    assert patched.signature() == full.signature()
    assert patched.n_nodes == full.n_nodes
    assert patched.n_links == full.n_links
    assert patched.n_classes == full.n_classes
    if table.n_rows and table.n_dims <= 3:
        for cell in all_cells(table):
            assert approx_equal(
                point_query(patched, cell), point_query(full, cell)
            )


class TestDeltaRecording:
    def test_insert_records_dirty_nodes(self):
        table, tree = _build(0, n_dims=3, cardinality=3, n_rows=8)
        delta = tree.begin_delta()
        apply_insertions(tree, table, [("9", "9", "9", 1.0)])
        assert tree.end_delta() is delta
        assert delta.created  # brand-new path/class nodes
        assert len(delta) == len(delta.dirty) > 0
        assert delta.tree is tree

    def test_delete_records_removed_nodes(self):
        table, tree = _build(1, n_dims=3, cardinality=2, n_rows=6)
        rec = table.decode_cell(table.rows[0]) + tuple(table.measures[0])
        tree.begin_delta()
        apply_deletions(tree, table, [rec])
        delta = tree.end_delta()
        assert delta.restated or delta.removed
        free = tree._free()
        assert delta.removed <= free | delta.created

    def test_recording_stops_after_end_delta(self):
        table, tree = _build(2, n_dims=3, cardinality=3, n_rows=8)
        tree.begin_delta()
        delta = tree.end_delta()
        before = len(delta)
        apply_insertions(tree, table, [("9", "9", "9", 1.0)])
        assert len(delta) == before

    def test_empty_delta_patch_returns_same_view(self):
        _, tree = _build(3, n_dims=3, cardinality=3, n_rows=8)
        frozen = tree.freeze()
        tree.begin_delta()
        delta = tree.end_delta()
        assert len(delta) == 0
        assert frozen.patch(delta) is frozen

    def test_merge_unions_categories(self):
        _, tree = _build(4, n_dims=2, cardinality=2, n_rows=4)
        a, b = MaintenanceDelta(tree), MaintenanceDelta(tree)
        a.note_created(1)
        a.note_state(2)
        b.note_removed(3)
        b.note_links(2)
        merged = a.merge(b)
        assert merged.created == {1}
        assert merged.removed == {3}
        assert merged.dirty == {1, 2, 3}

    def test_merge_rejects_foreign_tree(self):
        _, tree_a = _build(5, n_dims=2, cardinality=2, n_rows=4)
        _, tree_b = _build(6, n_dims=2, cardinality=2, n_rows=4)
        with pytest.raises(ValueError):
            MaintenanceDelta(tree_a).merge(MaintenanceDelta(tree_b))

    def test_copy_does_not_inherit_recorder(self):
        table, tree = _build(7, n_dims=3, cardinality=3, n_rows=8)
        delta = tree.begin_delta()
        clone = tree.copy()
        apply_insertions(clone, table, [("9", "9", "9", 1.0)])
        tree.end_delta()
        # what_if / transactional copies must not pollute the recording.
        assert len(delta) == 0


class TestPatchEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_chained_single_tuple_mutations(self, seed):
        table, tree = _build(seed, n_dims=3, cardinality=3, n_rows=14)
        frozen = tree.freeze()
        rng = random.Random(seed)
        for _ in range(8):
            table, delta = _mutate_once(tree, table, rng)
            frozen = frozen.patch(delta, full_refreeze_ratio=0.9)
            _assert_equivalent(frozen, tree, table)

    @pytest.mark.parametrize("seed", range(6))
    def test_merged_multi_batch_delta(self, seed):
        """Several batches accumulated into one delta, patched once."""
        table, tree = _build(seed, n_dims=3, cardinality=3, n_rows=12)
        frozen = tree.freeze()
        rng = random.Random(seed + 100)
        merged = None
        for _ in range(4):
            table, delta = _mutate_once(tree, table, rng)
            merged = delta if merged is None else merged.merge(delta)
        patched = frozen.patch(merged, full_refreeze_ratio=0.9)
        _assert_equivalent(patched, tree, table)

    def test_modify_through_warehouse(self):
        table, tree = _build(3, n_dims=3, cardinality=3, n_rows=10)
        wh = QCWarehouse(table, ("sum", "m"), tree=tree, cache_size=0)
        wh.view  # compile the initial frozen view
        old = table.decode_cell(table.rows[0]) + tuple(table.measures[0])
        wh.modify([old], [("9", "9", "9", 5.0)])
        _assert_equivalent(wh.serving_tree, wh.tree, wh.table)
        assert wh.last_refreeze["mode"] in ("patched", "full", "compacted")

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        ops=st.lists(
            st.sampled_from(["insert", "insert_new", "delete"]),
            min_size=1, max_size=6,
        ),
    )
    def test_hypothesis_mutation_sequences(self, seed, ops):
        table, tree = _build(seed % 50, n_dims=3, cardinality=3, n_rows=10)
        frozen = tree.freeze()
        rng = random.Random(seed)
        for op in ops:
            table, delta = _mutate_once(tree, table, rng, op=op)
            frozen = frozen.patch(delta, full_refreeze_ratio=0.9)
        _assert_equivalent(frozen, tree, table)

    def test_all_query_families_agree(self, extended_sales_table):
        """Point, range, iceberg, and exploration answers after a patch
        match a recompiled warehouse exactly."""
        wh = QCWarehouse(
            extended_sales_table, ("sum", "Sale"), cache_size=0
        )
        wh.view
        wh.insert([("S3", "P1", "s", 7.0), ("S1", "P3", "f", 2.0)])
        wh.delete([("S2", "P2", "f", 4.0)])
        oracle = QCWarehouse(wh.table, ("sum", "Sale"), cache_size=0)
        assert wh.serving_tree is not None
        for cell in [("S1", "*", "*"), ("S3", "P1", "s"), ("*", "*", "*"),
                     ("S2", "P3", "f"), ("nope", "*", "*")]:
            assert wh.point(cell) == oracle.point(cell)
        spec = (["S1", "S3"], "*", "s")
        assert wh.range(spec) == oracle.range(spec)
        assert wh.iceberg(10.0) == oracle.iceberg(10.0)
        assert wh.iceberg_in_range(spec, 5.0) == \
            oracle.iceberg_in_range(spec, 5.0)
        assert wh.class_of(("S1", "*", "s")) == oracle.class_of(("S1", "*", "s"))
        assert wh.rollup(("S3", "P1", "s")) == oracle.rollup(("S3", "P1", "s"))
        assert wh.drilldowns(("*", "*", "*")) == \
            oracle.drilldowns(("*", "*", "*"))
        assert wh.open_class(("S1", "*", "s")) == \
            oracle.open_class(("S1", "*", "s"))


class TestFallbackFuzz:
    """Satellite: force ``full_refreeze_ratio`` to 0 and 1 — always-full
    and always-patch must serve identical answers."""

    @pytest.mark.parametrize("seed", range(5))
    def test_ratio_zero_and_one_agree(self, seed):
        table = make_random_table(seed, n_dims=3, cardinality=3, n_rows=12)
        always_full = QCWarehouse(
            table, ("sum", "m"), full_refreeze_ratio=0.0, cache_size=0
        )
        always_patch = QCWarehouse(
            table, ("sum", "m"), full_refreeze_ratio=1.0, cache_size=0
        )
        always_full.view
        always_patch.view
        rng = random.Random(seed)
        for step in range(6):
            rec = _random_record(table, rng, fresh_labels=step % 2 == 0)
            always_full.insert([rec])
            always_patch.insert([rec])
            for cell in all_cells(always_full.table):
                raw = always_full.table.decode_cell(cell)
                assert approx_equal(
                    always_full.point(raw), always_patch.point(raw)
                )
        # Both warehouses exercised the path their ratio forces.
        assert always_full.last_refreeze["mode"] in ("fresh", "full")
        assert always_patch.last_refreeze["mode"] in ("patched", "compacted")

    def test_ratio_zero_always_recompiles(self):
        table, tree = _build(9, n_dims=3, cardinality=3, n_rows=10)
        frozen = tree.freeze()
        rng = random.Random(9)
        table, delta = _mutate_once(tree, table, rng, op="insert_new")
        out = frozen.patch(delta, full_refreeze_ratio=0.0)
        assert out.patch_stats["mode"] == "full"
        assert out.patch_stats["reason"] == "dirty-ratio"

    def test_compaction_reclaims_spare_capacity(self):
        """Many appended nodes accumulate overlay + tombstone debt until
        a patch compacts — and the compacted view is dense again."""
        table, tree = _build(10, n_dims=3, cardinality=2, n_rows=6)
        frozen = tree.freeze()
        rng = random.Random(10)
        saw_compaction = False
        for step in range(60):
            table, delta = _mutate_once(
                tree, table, rng,
                op="insert_new" if step % 2 == 0 else "delete",
            )
            frozen = frozen.patch(delta, full_refreeze_ratio=1.0)
            stats = frozen.patch_stats
            if stats["mode"] == "compacted":
                saw_compaction = True
                # Repacked: no tombstones, no overlay, slots == live nodes.
                assert frozen.n_nodes == len(frozen.state)
                assert not frozen._dead
                assert frozen._edge_over is None
        assert saw_compaction
        _assert_equivalent(frozen, tree, table)

    def test_stride_overflow_falls_back_to_full(self):
        """A label code past the routing-key stride headroom cannot be
        spliced; the patch must recompile instead of mis-routing."""
        table, tree = _build(11, n_dims=3, cardinality=3, n_rows=30)
        frozen = tree.freeze()
        stride = frozen._stride
        assert stride > 0
        # New labels mint sequential dictionary codes; enough of them in
        # one dimension pushes a code past the stride's 2x headroom.
        records = [(100 + i, 0, 0, 1.0) for i in range(stride)]
        tree.begin_delta()
        table = apply_insertions(tree, table, records)
        delta = tree.end_delta()
        out = frozen.patch(delta, full_refreeze_ratio=1.0)
        assert out.patch_stats["mode"] == "full"
        assert out.patch_stats["reason"] == "stride-overflow"
        _assert_equivalent(out, tree, table)


class TestDeltaUnion:
    """Satellite: delta-union semantics — associative, id-reuse-safe,
    and per-tuple unions patching identically to batch recordings."""

    CATEGORIES = ("created", "removed", "restated", "relinked", "reedged")

    def _synthetic(self, tree, **cats):
        delta = MaintenanceDelta(tree)
        for cat, ids in cats.items():
            getattr(delta, cat).update(ids)
        return delta

    def test_merge_is_associative_and_commutative(self):
        _, tree = _build(30, n_dims=2, cardinality=2, n_rows=4)
        a = self._synthetic(tree, created={1, 2}, restated={3})
        b = self._synthetic(tree, removed={2}, relinked={4})
        c = self._synthetic(tree, created={5}, reedged={1})
        left, right = (a | b) | c, a | (b | c)
        for cat in self.CATEGORIES:
            assert getattr(left, cat) == getattr(right, cat)
            assert getattr(a | b, cat) == getattr(b | a, cat)

    def test_union_folds_like_pairwise_merge(self):
        _, tree = _build(31, n_dims=2, cardinality=2, n_rows=4)
        deltas = [
            self._synthetic(tree, created={i}, restated={i + 10})
            for i in range(4)
        ]
        folded = MaintenanceDelta.union(tree, deltas)
        pairwise = deltas[0]
        for delta in deltas[1:]:
            pairwise = pairwise | delta
        for cat in self.CATEGORIES:
            assert getattr(folded, cat) == getattr(pairwise, cat)

    def test_update_is_in_place_merge(self):
        _, tree = _build(32, n_dims=2, cardinality=2, n_rows=4)
        a = self._synthetic(tree, created={1})
        b = self._synthetic(tree, removed={2}, restated={1})
        a.update(b)
        assert a.created == {1} and a.removed == {2} and a.restated == {1}

    def test_union_rejects_foreign_tree(self):
        _, tree_a = _build(33, n_dims=2, cardinality=2, n_rows=4)
        _, tree_b = _build(34, n_dims=2, cardinality=2, n_rows=4)
        with pytest.raises(ValueError):
            MaintenanceDelta.union(
                tree_a, [MaintenanceDelta(tree_b)]
            )

    def test_empty_union_patches_as_noop(self):
        _, tree = _build(35, n_dims=3, cardinality=3, n_rows=8)
        frozen = tree.freeze()
        empty = MaintenanceDelta.union(tree, [])
        assert len(empty) == 0
        assert frozen.patch(empty) is frozen

    def _run_stream(self, tree, table, seed, per_tuple):
        """A deterministic mutation stream; returns the final table and
        either per-mutation deltas folded via union, or one delta
        recorded across the whole stream."""
        rng = random.Random(seed)
        deltas = []
        whole = None if per_tuple else tree.begin_delta()
        for step in range(8):
            op = ("insert_new", "delete", "insert")[step % 3]
            if per_tuple:
                tree.begin_delta()
            try:
                if op == "delete" and table.rows:
                    i = rng.randrange(len(table.rows))
                    rec = table.decode_cell(table.rows[i]) \
                        + tuple(table.measures[i])
                    table = apply_deletions(tree, table, [rec])
                else:
                    rec = _random_record(
                        table, rng, fresh_labels=op == "insert_new"
                    )
                    table = apply_insertions(tree, table, [rec])
            finally:
                if per_tuple:
                    deltas.append(tree.end_delta())
        if not per_tuple:
            whole = tree.end_delta()
        return table, (
            MaintenanceDelta.union(tree, deltas) if per_tuple else whole
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_per_tuple_union_equals_stream_recording(self, seed):
        """Union of per-tuple deltas vs one whole-stream recording of the
        identical mutation stream: same dirty set, and both patch a
        stale frozen view to the same final tree.  ``removed`` may keep
        ids the stream recorder dropped (pruned-then-reallocated), but
        those ids are then in ``created`` too — dirty either way."""
        table, tree = _build(seed, n_dims=3, cardinality=3, n_rows=10)
        clone = tree.copy()
        frozen_a, frozen_b = tree.freeze(), clone.freeze()
        _, union = self._run_stream(tree, table, seed, per_tuple=True)
        _, whole = self._run_stream(clone, table, seed, per_tuple=False)
        assert union.dirty == whole.dirty
        assert union.created == whole.created
        assert union.restated == whole.restated
        assert union.relinked == whole.relinked
        assert union.reedged == whole.reedged
        assert whole.removed <= union.removed
        assert union.removed - whole.removed <= union.created
        patched_a = frozen_a.patch(union, full_refreeze_ratio=1.0)
        patched_b = frozen_b.patch(whole, full_refreeze_ratio=1.0)
        assert patched_a.signature() == tree.freeze().signature()
        assert patched_b.signature() == clone.freeze().signature()
        assert patched_a.signature() == patched_b.signature()

    def test_id_reuse_between_merged_batches_is_safe(self):
        """A node pruned by one batch whose id is reused by a later batch
        must patch correctly from the merged delta (the id is read back
        from the post-mutation tree, not replayed as an event)."""
        table, tree = _build(36, n_dims=3, cardinality=3, n_rows=8)
        frozen = tree.freeze()
        fresh = ("7", "7", "7", 3.0)
        deltas = []
        tables = [table]
        for op, rec in (("ins", fresh), ("del", fresh), ("ins", ("8", "8", "8", 4.0))):
            tree.begin_delta()
            try:
                if op == "ins":
                    tables.append(apply_insertions(tree, tables[-1], [rec]))
                else:
                    tables.append(apply_deletions(tree, tables[-1], [rec]))
            finally:
                deltas.append(tree.end_delta())
        # The prune + re-create across batches shares ids: the union
        # holds them in removed AND created simultaneously.
        merged = MaintenanceDelta.union(tree, deltas)
        reused = merged.removed & merged.created
        assert reused, "expected pruned ids to be reallocated"
        patched = frozen.patch(merged, full_refreeze_ratio=1.0)
        _assert_equivalent(patched, tree, tables[-1])


class TestWarehouseIntegration:
    def test_small_write_patches_large_tree(self):
        table = make_random_table(20, n_dims=4, cardinality=5, n_rows=120)
        wh = QCWarehouse(table, ("sum", "m"), cache_size=0)
        wh.view
        wh.insert([_random_record(table, random.Random(0))])
        assert wh.serving_tree is not None
        assert wh.last_refreeze["mode"] == "patched"
        assert wh.stats()["refreeze"]["mode"] == "patched"

    def test_failed_batch_leaves_patch_path_healthy(self):
        table = make_random_table(21, n_dims=3, cardinality=3, n_rows=10)
        wh = QCWarehouse(table, ("sum", "m"), cache_size=0)
        wh.view
        with pytest.raises(Exception):
            wh.delete([("no-such", "no-such", "no-such", 1.0)])
        wh.insert([("9", "9", "9", 1.0)])
        _assert_equivalent(wh.serving_tree, wh.tree, wh.table)

    def test_rebuild_resets_to_fresh_compile(self):
        table = make_random_table(22, n_dims=3, cardinality=3, n_rows=10)
        wh = QCWarehouse(table, ("sum", "m"), cache_size=0)
        wh.view
        wh.insert([("9", "9", "9", 1.0)])
        wh.rebuild()
        assert wh.serving_tree.patch_stats["mode"] == "fresh"
        _assert_equivalent(wh.serving_tree, wh.tree, wh.table)

    def test_pending_deltas_accumulate_between_reads(self):
        """Several writes with no read in between still produce one
        correct patch when the serving tree is finally demanded."""
        table = make_random_table(23, n_dims=3, cardinality=3, n_rows=12)
        wh = QCWarehouse(table, ("sum", "m"), cache_size=0)
        wh.view
        rng = random.Random(23)
        for _ in range(4):
            wh.insert([_random_record(wh.table, rng)])
        _assert_equivalent(wh.serving_tree, wh.tree, wh.table)
