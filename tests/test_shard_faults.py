"""Publish-protocol fault injection for the multi-process ShardServer.

Each test drives one failure shape through the shard-specific fault
sites (``shard:publish``, ``shard:attach``) or a hard worker-process
kill, and asserts the protocol's promise: readers keep serving the
last-good epoch, the supervisor converges the fleet back to the
current epoch, and no ``/dev/shm`` segment outlives the server.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.warehouse import QCWarehouse
from repro.errors import ServerDegradedError, WorkerCrashedError
from repro.reliability.faults import InjectedCrash, ServingFaults
from repro.serving.retry import RetryPolicy
from repro.shard import ShardServer, created_segments

RECORD = ("S3", "P1", "s", 5.0)


@pytest.fixture
def warehouse(sales_table):
    return QCWarehouse(sales_table, aggregate="avg(Sale)")


@pytest.fixture
def faults():
    return ServingFaults()


@pytest.fixture
def server(warehouse, faults):
    srv = ShardServer(warehouse, processes=2, faults=faults,
                      supervise_interval=0.02, cache_size=0)
    yield srv
    srv.close()
    assert created_segments() == []


def wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def fleet_converged(server) -> bool:
    shard = server.shard_health()
    return (shard["processes_alive"] == shard["processes_configured"]
            and all(w["alive"]
                    and w["attached_epoch"] == shard["current_epoch"]
                    for w in shard["workers"]))


def retrying_point(server, cell, attempts: int = 20):
    """Query through worker deaths: WorkerCrashedError is retryable by
    contract (the read never ran)."""
    for _ in range(attempts):
        try:
            return server.point(cell)
        except WorkerCrashedError:
            time.sleep(0.02)
    return server.point(cell)


class TestWorkerKill:
    def test_killed_worker_is_respawned(self, server):
        victim = server.shard_health()["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        assert wait_until(
            lambda: server.shard_health()["process_crashes"] >= 1
        )
        assert wait_until(lambda: fleet_converged(server))
        shard = server.shard_health()
        assert shard["process_restarts"] >= 1
        assert shard["process_crashes"] >= 1
        assert victim not in [w["pid"] for w in shard["workers"]]
        assert retrying_point(server, ("S2", "*", "f")) == 9.0

    def test_kill_mid_swap_converges(self, server):
        """A worker dying during a publish must not wedge the protocol:
        the publish completes, the respawned worker attaches the new
        epoch, answers reflect the write."""
        victim = server.shard_health()["workers"][1]["pid"]
        os.kill(victim, signal.SIGKILL)
        server.insert([RECORD])  # publish races the death + respawn
        assert retrying_point(server, ("S3", "P1", "s")) == 5.0
        assert wait_until(lambda: fleet_converged(server))
        assert server.shard_health()["current_epoch"] == 2
        assert retrying_point(server, ("S3", "P1", "s")) == 5.0

    def test_whole_fleet_down_falls_back_to_parent(self, server):
        victims = [w["pid"] for w in server.shard_health()["workers"]]
        for pid in victims:
            os.kill(pid, signal.SIGKILL)

        def answered():
            # Until the pipe EOF is observed a routed request may fail
            # with the retryable WorkerCrashedError; once the fleet is
            # known-dead the parent answers from its own snapshot.
            try:
                return server.point(("S2", "*", "f")) == 9.0
            except WorkerCrashedError:
                return False

        assert wait_until(answered, timeout_s=5.0)
        assert wait_until(lambda: fleet_converged(server))
        assert server.shard_health()["local_fallbacks"] >= 0

    def test_retry_policy_masks_worker_death(self, server):
        retry = RetryPolicy(max_attempts=6, base_delay_s=0.01)
        victim = server.shard_health()["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        value = retry.call(lambda: server.point(("S2", "*", "f")))
        assert value == 9.0


class TestPublishCrash:
    def test_crash_between_pack_and_announce_retries(
            self, server, faults):
        faults.arm("shard:publish", times=1, exc=InjectedCrash)
        server.insert([RECORD])
        counters = server.stats()["counters"]
        assert counters["publish_retries"] == 1
        assert retrying_point(server, ("S3", "P1", "s")) == 5.0
        assert wait_until(lambda: fleet_converged(server))
        # The failed attempt's segment was not leaked: only epochs
        # still referenced remain registered.
        assert wait_until(lambda: len(created_segments()) <= 2)

    def test_persistent_crash_degrades_readers_keep_last_good(
            self, server, faults):
        before = server.point(("*", "*", "*"))
        faults.arm("shard:publish", times=None, exc=InjectedCrash)
        with pytest.raises(ServerDegradedError):
            server.insert([RECORD])
        assert server.write_degraded
        # Readers — including the worker fleet — keep the last-good
        # epoch and keep answering.
        assert server.shard_health()["current_epoch"] == 1
        assert retrying_point(server, ("*", "*", "*")) == before
        assert retrying_point(server, ("S3", "P1", "s")) is None
        # Fault clears: recovery publishes the stuck write to the fleet.
        faults.disarm("shard:publish")
        assert server.recover() is True
        assert retrying_point(server, ("S3", "P1", "s")) == 5.0
        assert wait_until(lambda: fleet_converged(server))
        assert server.shard_health()["current_epoch"] == 2


class TestAttachFailure:
    def test_failed_attach_keeps_last_good_until_reannounce(
            self, server, faults):
        faults.arm("shard:attach", times=1, exc=InjectedCrash)
        server.insert([RECORD])
        # The parent's swap is unaffected: answers reflect the write
        # immediately (local fallback covers unconverged workers).
        assert retrying_point(server, ("S3", "P1", "s")) == 5.0
        shard = server.shard_health()
        assert shard["current_epoch"] == 2
        assert shard["attach_failures"] >= 1
        # The supervisor re-announces until every worker converges.
        assert wait_until(lambda: fleet_converged(server))
        assert server.shard_health()["reannounces"] >= 1
        assert retrying_point(server, ("S3", "P1", "s")) == 5.0

    def test_repeated_attach_failures_eventually_converge(
            self, server, faults):
        faults.arm("shard:attach", times=3, exc=InjectedCrash)
        for i, record in enumerate(
                [RECORD, ("S4", "P1", "s", 7.0), ("S5", "P2", "f", 2.0)]):
            server.insert([record])
            assert retrying_point(server, record[:3]) == record[3]
        assert wait_until(lambda: fleet_converged(server))
        shard = server.shard_health()
        assert shard["current_epoch"] == 4
        assert shard["attach_failures"] >= 3
        # Convergence also releases the superseded segments.
        assert wait_until(lambda: len(created_segments()) == 1)


class TestLedgerUnderFaults:
    def test_ledger_balances_through_chaos(self, server, faults):
        faults.arm("shard:attach", times=1, exc=InjectedCrash)
        victim = server.shard_health()["workers"][0]["pid"]
        server.insert([RECORD])
        os.kill(victim, signal.SIGKILL)
        for _ in range(20):
            try:
                server.point(("S3", "P1", "s"))
            except WorkerCrashedError:
                pass
        assert wait_until(lambda: fleet_converged(server))
        counters = server.stats()["counters"]
        assert counters["submitted"] == (
            counters["completed"] + counters["timeouts"]
            + counters["errors"] + counters["cancelled"]
        ), counters
