"""Tests for the inverted cover index (repro.cube.cover_index)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cells import ALL
from repro.cube.cover_index import CoverIndex
from repro.cube.lattice import closure
from tests.conftest import all_cells, make_random_table


class TestAgainstLinearScan:
    @pytest.mark.parametrize("seed", range(15))
    def test_rows_match_select(self, seed):
        table = make_random_table(seed)
        index = CoverIndex(table)
        for cell in all_cells(table):
            assert sorted(index.rows(cell)) == table.select(cell)

    @pytest.mark.parametrize("seed", range(15))
    def test_closure_matches_oracle(self, seed):
        table = make_random_table(seed + 30)
        index = CoverIndex(table)
        for cell in all_cells(table):
            assert index.closure(cell) == closure(table, cell)

    @pytest.mark.parametrize("seed", range(5))
    def test_closure_and_rows(self, seed):
        table = make_random_table(seed + 60)
        index = CoverIndex(table)
        for cell in all_cells(table):
            ub, rows = index.closure_and_rows(cell)
            assert sorted(rows) == table.select(cell)
            assert ub == closure(table, cell)

    def test_covers_any(self, sales_table):
        index = CoverIndex(sales_table)
        assert index.covers_any(sales_table.encode_cell(("S1", "*", "*")))
        assert not index.covers_any(sales_table.encode_cell(("S2", "*", "s")))


class TestEdgeCases:
    def test_from_bare_rows(self):
        index = CoverIndex(rows=[(0, 1), (0, 2)], n_dims=2)
        assert index.rows((0, ALL)) == frozenset({0, 1})
        assert index.rows((ALL, 1)) == frozenset({0})
        assert index.closure((0, ALL)) == (0, ALL)

    def test_empty_rows(self):
        index = CoverIndex(rows=[], n_dims=2)
        assert index.rows((ALL, ALL)) == frozenset()
        assert index.closure((ALL, ALL)) is None

    def test_unknown_value_is_empty(self):
        index = CoverIndex(rows=[(0, 0)], n_dims=2)
        assert index.rows((5, ALL)) == frozenset()

    def test_all_star_returns_everything(self):
        index = CoverIndex(rows=[(0, 0), (1, 1), (2, 2)], n_dims=2)
        assert index.rows((ALL, ALL)) == frozenset({0, 1, 2})

    def test_caches_are_per_instance(self):
        a = CoverIndex(rows=[(0,)], n_dims=1)
        b = CoverIndex(rows=[(1,)], n_dims=1)
        assert a.rows((0,)) == frozenset({0})
        assert b.rows((0,)) == frozenset()


class TestHypothesis:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
            max_size=15,
        ),
        st.tuples(
            st.one_of(st.just(ALL), st.integers(0, 3)),
            st.one_of(st.just(ALL), st.integers(0, 3)),
            st.one_of(st.just(ALL), st.integers(0, 3)),
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_rows_equal_filter(self, rows, cell):
        from repro.core.cells import covers

        index = CoverIndex(rows=rows, n_dims=3)
        expected = frozenset(
            i for i, row in enumerate(rows) if covers(cell, row)
        )
        assert index.rows(cell) == expected
