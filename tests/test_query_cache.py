"""Tests for the LSN-stamped query cache and its warehouse integration.

The cache may only ever serve an answer computed at the warehouse's
current serving version — any insert, delete, rebuild, recovery, or
degraded-mode flip must atomically invalidate every cached entry.
"""

import pytest

from repro.core.query_cache import (
    MISS,
    LsnQueryCache,
    constrained_iceberg_cache_key,
    iceberg_cache_key,
    point_cache_key,
    range_cache_key,
)
from repro.core.warehouse import QCWarehouse
from repro.cube.schema import Schema

SCHEMA = Schema(dimensions=("Store", "Product", "Season"), measures=("Sale",))
RECORDS = [
    ("S1", "P1", "s", 6.0),
    ("S1", "P2", "s", 12.0),
    ("S2", "P1", "f", 9.0),
]


def make_wh(**kwargs):
    return QCWarehouse.from_records(
        RECORDS, SCHEMA, aggregate=("avg", "Sale"), **kwargs
    )


class TestCacheUnit:
    def test_store_then_lookup(self):
        cache = LsnQueryCache(maxsize=4)
        cache.store("k", (1, 0), 42)
        assert cache.lookup("k", (1, 0)) == 42

    def test_miss_sentinel_is_not_none(self):
        """None is a legitimate cached answer (an empty-cover cell); the
        sentinel distinguishing it from absence must never leak."""
        cache = LsnQueryCache(maxsize=4)
        assert cache.lookup("k", (1, 0)) is MISS
        cache.store("k", (1, 0), None)
        assert cache.lookup("k", (1, 0)) is None

    def test_stamp_change_invalidates_everything(self):
        cache = LsnQueryCache(maxsize=8)
        for i in range(4):
            cache.store(i, (1, 0), i)
        assert cache.lookup(2, (2, 0)) is MISS  # newer stamp: all stale
        assert cache.lookup(3, (2, 0)) is MISS
        assert cache.stats()["size"] <= 1

    def test_lru_eviction_bounds_size(self):
        cache = LsnQueryCache(maxsize=3)
        stamp = (1, 0)
        for i in range(10):
            cache.store(i, stamp, i)
        assert cache.stats()["size"] == 3
        assert cache.lookup(9, stamp) == 9
        assert cache.lookup(0, stamp) is MISS

    def test_lookup_refreshes_recency(self):
        cache = LsnQueryCache(maxsize=2)
        stamp = (1, 0)
        cache.store("a", stamp, 1)
        cache.store("b", stamp, 2)
        cache.lookup("a", stamp)     # "a" is now the most recent
        cache.store("c", stamp, 3)   # evicts "b", not "a"
        assert cache.lookup("a", stamp) == 1
        assert cache.lookup("b", stamp) is MISS

    def test_stats_hit_rate(self):
        cache = LsnQueryCache(maxsize=4)
        cache.store("k", (1, 0), 42)
        cache.lookup("k", (1, 0))
        cache.lookup("absent", (1, 0))
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestCacheKeys:
    """Normalized, namespaced keys for every cacheable query family."""

    def test_point_key_roundtrip(self):
        assert point_cache_key(("S1", "*", "f")) == ("point", ("S1", "*", "f"))
        assert point_cache_key((["S1"], "*")) is None  # unhashable part

    def test_range_key_normalizes_order_and_duplicates(self):
        a = range_cache_key((["S2", "S1", "S1"], "*", "f"))
        b = range_cache_key((["S1", "S2"], "*", "f"))
        assert a == b and a is not None

    def test_range_key_scalar_equals_singleton_list(self):
        assert range_cache_key(("S1", "*")) == range_cache_key((["S1"], "*"))

    def test_range_key_unsortable_spec_uncacheable(self):
        assert range_cache_key((["S1", 3], "*")) is None

    def test_iceberg_keys_distinguish_parameters(self):
        keys = {
            iceberg_cache_key(9.0, ">="),
            iceberg_cache_key(9.0, ">"),
            iceberg_cache_key(8.0, ">="),
            constrained_iceberg_cache_key(("*", "*"), 9.0, ">=", "filter"),
            constrained_iceberg_cache_key(("*", "*"), 9.0, ">=", "mark"),
        }
        assert len(keys) == 5

    def test_namespaces_do_not_collide(self):
        """A point cell and a range spec with the same raw tuple must
        occupy distinct cache slots."""
        assert point_cache_key(("S1", "*")) != range_cache_key(("S1", "*"))

    def test_eviction_counter(self):
        cache = LsnQueryCache(maxsize=2)
        for i in range(5):
            cache.store(i, (1, 0), i)
        assert cache.stats()["evictions"] == 3


class TestRangeIcebergCaching:
    """Satellite 2: range and iceberg answers ride the stamped cache."""

    def test_repeat_range_hits_cache(self):
        wh = make_wh()
        spec = (["S1", "S2"], "*", "s")
        first = wh.range(spec)
        assert wh.range(spec) == first
        assert wh.stats()["query_cache"]["hits"] == 1

    def test_equivalent_range_specs_share_an_entry(self):
        wh = make_wh()
        assert wh.range((["S2", "S1"], "*", "s")) == wh.range(
            (["S1", "S2"], "*", "s")
        )
        assert wh.stats()["query_cache"]["hits"] == 1

    def test_cached_range_result_is_isolated(self):
        wh = make_wh()
        spec = ("*", "*", "s")
        first = wh.range(spec)
        first[("tampered",)] = -1.0
        assert ("tampered",) not in wh.range(spec)

    def test_repeat_iceberg_hits_cache(self):
        wh = make_wh()
        first = wh.iceberg(9.0)
        second = wh.iceberg(9.0)
        assert second == first
        second.append("tampered")
        assert wh.iceberg(9.0) == first
        assert wh.stats()["query_cache"]["hits"] >= 1

    def test_iceberg_op_variants_are_distinct_entries(self):
        wh = make_wh()
        above = wh.iceberg(9.0, op=">=")
        below = wh.iceberg(9.0, op="<")
        assert above != below
        assert wh.stats()["query_cache"]["hits"] == 0

    def test_constrained_iceberg_cached_per_strategy(self):
        wh = make_wh()
        spec = ("*", "*", "s")
        mark = wh.iceberg_in_range(spec, 6.0, op=">", strategy="mark")
        filt = wh.iceberg_in_range(spec, 6.0, op=">", strategy="filter")
        assert mark == filt  # same answer via either plan...
        assert wh.iceberg_in_range(spec, 6.0, op=">", strategy="mark") == mark
        assert wh.stats()["query_cache"]["hits"] == 1  # ...distinct entries

    def test_insert_invalidates_range_and_iceberg(self):
        wh = make_wh()
        spec = (["S1", "S2"], "*", "*")
        before_range = wh.range(spec)
        before_ice = wh.iceberg(5.0)
        wh.insert([("S2", "P2", "s", 30.0)])
        assert wh.range(spec) != before_range
        assert wh.iceberg(5.0) != before_ice


class TestWarehouseIntegration:
    def test_repeat_query_hits_cache(self):
        wh = make_wh()
        assert wh.point(("S1", "*", "*")) == 9.0
        assert wh.point(("S1", "*", "*")) == 9.0
        stats = wh.stats()["query_cache"]
        assert stats["hits"] == 1

    def test_cached_none_for_empty_cells(self):
        wh = make_wh()
        assert wh.point(("S2", "*", "s")) is None
        assert wh.point(("S2", "*", "s")) is None
        assert wh.stats()["query_cache"]["hits"] == 1

    def test_insert_invalidates(self):
        wh = make_wh()
        assert wh.point(("S1", "*", "*")) == 9.0
        wh.insert([("S1", "P1", "w", 3.0)])
        assert wh.point(("S1", "*", "*")) == 7.0

    def test_delete_invalidates(self):
        wh = make_wh()
        assert wh.point(("S1", "*", "*")) == 9.0
        wh.delete([("S1", "P2", "s", 12.0)])
        assert wh.point(("S1", "*", "*")) == 6.0

    def test_insert_invalidates_with_wal(self, tmp_path):
        """With a WAL attached the stamp moves with the log position."""
        wh = make_wh()
        wh.attach_wal(tmp_path / "wh.wal")
        assert wh.point(("S1", "*", "*")) == 9.0
        wh.insert([("S1", "P1", "w", 3.0)])
        assert wh.point(("S1", "*", "*")) == 7.0

    def test_recovery_serves_post_replay_answers(self, tmp_path):
        tree_path = tmp_path / "wh.qct"
        table_path = tmp_path / "wh.csv"
        wal_path = tmp_path / "wh.wal"
        wh = make_wh()
        wh.save(tree_path, table_path)
        wh.attach_wal(wal_path)
        wh.insert([("S1", "P1", "w", 3.0)])
        # A crash here loses the in-memory tree; recovery replays the WAL.
        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        assert recovered.point(("S1", "*", "*")) == 7.0
        assert recovered.point(("S1", "*", "*")) == 7.0  # cached, same answer

    def test_rebuild_invalidates(self):
        wh = make_wh()
        assert wh.point(("S1", "*", "*")) == 9.0
        wh.rebuild()
        assert wh.point(("S1", "*", "*")) == 9.0
        # Post-rebuild answers were recomputed, not replayed from the
        # pre-rebuild cache: the rebuild bumped the serving stamp.
        assert wh.stats()["query_cache"]["invalidations"] >= 1

    def test_degraded_mode_bypasses_cache(self):
        wh = make_wh()
        assert wh.point(("S2", "*", "f")) == 9.0  # now cached
        victim = next(iter(wh.tree.iter_class_nodes()))
        wh.tree.set_state(victim, (123456.0, 1))
        report = wh.verify(samples=None)
        assert not report.ok and wh.degraded
        # Even previously-cached cells must come from the base table now.
        assert wh.point(("S2", "*", "f")) == 9.0
        wh.rebuild()
        assert wh.verify(samples=None).ok
        assert wh.point(("S2", "*", "f")) == 9.0

    def test_cache_disabled(self):
        wh = make_wh(cache_size=0)
        assert wh.point(("S1", "*", "*")) == 9.0
        assert "query_cache" not in wh.stats()

    def test_unhashable_cell_matches_uncached_behavior(self):
        """A label the encoder cannot hash fails identically with and
        without the cache in front — the cache never masks (or adds)
        errors, it only skips itself."""
        wh = make_wh()
        plain = make_wh(cache_size=0)
        with pytest.raises(TypeError):
            plain.point((["S1", "S9"], "*", "*"))
        with pytest.raises(TypeError):
            wh.point((["S1", "S9"], "*", "*"))

    def test_dict_engine_answers_match(self):
        frozen_wh = make_wh()
        dict_wh = make_wh(serve_frozen=False)
        for cell in (("S1", "*", "*"), ("*", "P2", "*"), ("S2", "*", "s")):
            assert frozen_wh.point(cell) == dict_wh.point(cell)
        assert dict_wh.stats()["serving"] == "dict"
        assert frozen_wh.stats()["serving"] == "frozen"


class TestHeatTracking:
    """Demand heat survives invalidation so the warmer knows what to
    replay after a snapshot swap."""

    def test_hot_keys_ordered_by_demand(self):
        cache = LsnQueryCache(maxsize=8)
        for _ in range(3):
            cache.lookup("hot", stamp=1)
        cache.lookup("warm", stamp=1)
        assert cache.hot_keys(2) == ["hot", "warm"]
        assert cache.hot_keys(0) == []

    def test_heat_survives_invalidation(self):
        cache = LsnQueryCache(maxsize=8)
        for _ in range(4):
            cache.lookup("hot", stamp=1)
        cache.invalidate(stamp=2)
        assert cache.hot_keys(1) == ["hot"]

    def test_heat_decays_across_invalidations(self):
        cache = LsnQueryCache(maxsize=8)
        cache.lookup("once", stamp=1)
        cache.invalidate(stamp=2)
        # A single-hit key decays to nothing after one swap.
        assert "once" not in cache.hot_keys(8)

    def test_heat_table_stays_bounded(self):
        cache = LsnQueryCache(maxsize=4)
        for i in range(100):
            cache.lookup(("k", i), stamp=1)
        assert len(cache._heat) <= 4 * cache.maxsize

    def test_warmed_counter_in_stats(self):
        cache = LsnQueryCache(maxsize=4)
        assert cache.stats()["warmed"] == 0
        cache.warmed += 2
        stats = cache.stats()
        assert stats["warmed"] == 2
        assert "hot_tracked" in stats
