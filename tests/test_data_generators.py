"""Tests for the synthetic and weather-like dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import zipf_probabilities, zipf_table
from repro.data.weather import (
    DIMENSIONS,
    PAPER_CARDINALITIES,
    scaled_cardinalities,
    weather_table,
)
from repro.errors import SchemaError


class TestZipfProbabilities:
    def test_sums_to_one(self):
        assert zipf_probabilities(50, 2.0).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(20, 2.0)
        assert all(probs[i] >= probs[i + 1] for i in range(19))

    def test_factor_two_ratio(self):
        probs = zipf_probabilities(10, 2.0)
        assert probs[0] / probs[1] == pytest.approx(4.0)

    def test_cardinality_one(self):
        assert zipf_probabilities(1, 2.0).tolist() == [1.0]

    def test_invalid_cardinality(self):
        with pytest.raises(SchemaError):
            zipf_probabilities(0, 2.0)


class TestZipfTable:
    def test_shape(self):
        table = zipf_table(200, 4, 10, seed=0)
        assert table.n_rows == 200
        assert table.n_dims == 4
        assert table.cardinalities() == (10, 10, 10, 10)

    def test_deterministic(self):
        a = zipf_table(100, 3, 8, seed=5)
        b = zipf_table(100, 3, 8, seed=5)
        assert a.rows == b.rows
        assert np.array_equal(a.measures, b.measures)

    def test_seed_changes_data(self):
        a = zipf_table(100, 3, 8, seed=5)
        b = zipf_table(100, 3, 8, seed=6)
        assert a.rows != b.rows

    def test_skew_present(self):
        table = zipf_table(2000, 1, 10, zipf=2.0, seed=0)
        counts = [0] * 10
        for (v,) in table.rows:
            counts[v] += 1
        assert counts[0] > 0.5 * len(table.rows)  # rank 1 dominates

    def test_per_dimension_cardinalities(self):
        table = zipf_table(50, 3, [5, 10, 2], seed=1)
        assert table.cardinalities() == (5, 10, 2)

    def test_cardinality_count_mismatch(self):
        with pytest.raises(SchemaError):
            zipf_table(10, 3, [5, 10], seed=1)

    def test_empty(self):
        table = zipf_table(0, 2, 5, seed=0)
        assert table.n_rows == 0

    def test_multiple_measures(self):
        table = zipf_table(10, 2, 5, seed=0, n_measures=3)
        assert table.measures.shape == (10, 3)


class TestWeatherTable:
    def test_nine_dimensions_with_paper_names(self):
        table = weather_table(100, scale=0.01, seed=0)
        assert table.schema.dimension_names == DIMENSIONS
        assert len(PAPER_CARDINALITIES) == 9

    def test_scaled_cardinalities(self):
        cards = scaled_cardinalities(0.01)
        assert cards["station_id"] == 70
        assert cards["brightness"] == 2  # floor of 2

    def test_scale_validation(self):
        with pytest.raises(SchemaError):
            scaled_cardinalities(0)
        with pytest.raises(SchemaError):
            weather_table(10, scale=2.0)

    def test_dimension_prefix_selection(self):
        table = weather_table(50, scale=0.01, seed=0, n_dims=4)
        assert table.schema.dimension_names == DIMENSIONS[:4]
        with pytest.raises(SchemaError):
            weather_table(10, n_dims=0)

    def test_deterministic(self):
        a = weather_table(80, scale=0.01, seed=3)
        b = weather_table(80, scale=0.01, seed=3)
        assert a.rows == b.rows

    def test_functional_dependency_station_longitude(self):
        table = weather_table(400, scale=0.02, seed=1)
        j_station = 0
        j_longitude = 1
        mapping = {}
        for row in table.rows:
            station, longitude = row[j_station], row[j_longitude]
            assert mapping.setdefault(station, longitude) == longitude

    def test_solar_altitude_correlates_with_hour(self):
        table = weather_table(500, scale=0.05, seed=2)
        j_solar = DIMENSIONS.index("solar_altitude")
        j_hour = DIMENSIONS.index("hour")
        solar = np.array([r[j_solar] for r in table.rows], dtype=float)
        hour = np.array([r[j_hour] for r in table.rows], dtype=float)
        assert np.corrcoef(solar, hour)[0, 1] > 0.8

    def test_correlations_help_quotient_compression(self):
        """Destroying the correlations (same marginals, columns shuffled
        independently) inflates both the cube and the class count — the
        structure the generator plants is what quotient cubes exploit."""
        import random

        from repro.cube.buc import buc_cell_count
        from repro.cube.quotient import QCTable
        from repro.cube.table import BaseTable

        weather = weather_table(300, scale=0.02, seed=0, n_dims=5)
        rng = random.Random(0)
        columns = list(zip(*weather.rows))
        shuffled_columns = []
        for column in columns:
            column = list(column)
            rng.shuffle(column)
            shuffled_columns.append(column)
        shuffled = BaseTable.from_encoded(
            list(zip(*shuffled_columns)),
            weather.measures,
            weather.schema,
            cardinalities=list(weather.cardinalities()),
        )
        assert buc_cell_count(weather) < buc_cell_count(shuffled)
        assert len(QCTable.from_table(weather)) < len(
            QCTable.from_table(shuffled)
        )
