"""Tests for the cover-partition DFS (repro.core.classes).

The paper's Figure 6 lists the exact temporary classes for the running
example; we reproduce that table and check the DFS's structural
invariants against the brute-force oracle on random inputs.
"""

import pytest

from repro.core.cells import ALL, generalizes
from repro.core.classes import (
    enumerate_temp_classes,
    partition_closure,
    unique_upper_bounds,
)
from repro.cube.lattice import closed_cells, closure
from tests.conftest import make_random_table


def _decode(table, cell):
    return table.decode_cell(cell)


class TestPaperExample:
    def test_figure6_temp_classes(self, sales_table):
        temp = enumerate_temp_classes(sales_table, ("avg", "Sale"))
        rows = {
            (_decode(sales_table, t.upper_bound),
             _decode(sales_table, t.lower_bound)): t
            for t in temp
        }
        # The eleven rows of Figure 6.  The paper's step 5 expands from the
        # closure d, so instantiated cells inherit closure-filled values:
        # where Figure 6 prints lower bounds (S1, P1, *) / (S1, P2, *), the
        # expansion cell carries the season forced by closure (S1, *, s).
        # Upper bounds, partitions, aggregates, and link dimensions are
        # identical under either convention.
        expected = {
            (("*", "*", "*"), ("*", "*", "*")),
            (("*", "P1", "*"), ("*", "P1", "*")),
            (("S1", "*", "s"), ("S1", "*", "*")),
            (("S1", "*", "s"), ("*", "*", "s")),
            (("S1", "P1", "s"), ("S1", "P1", "s")),
            (("S1", "P1", "s"), ("*", "P1", "s")),
            (("S1", "P2", "s"), ("S1", "P2", "s")),
            (("S1", "P2", "s"), ("*", "P2", "*")),
            (("S2", "P1", "f"), ("S2", "*", "*")),
            (("S2", "P1", "f"), ("*", "P1", "f")),
            (("S2", "P1", "f"), ("*", "*", "f")),
        }
        assert set(rows) == expected
        assert len(temp) == 11

    def test_figure6_aggregates(self, sales_table):
        from repro.cube.aggregates import make_aggregate

        agg = make_aggregate(("avg", "Sale"))
        temp = enumerate_temp_classes(sales_table, agg)
        by_ub = {}
        for t in temp:
            by_ub.setdefault(_decode(sales_table, t.upper_bound),
                             agg.value(t.state))
        assert by_ub[("*", "*", "*")] == 9.0
        assert by_ub[("*", "P1", "*")] == 7.5
        assert by_ub[("S1", "P1", "s")] == 6.0
        assert by_ub[("S1", "P2", "s")] == 12.0

    def test_figure6_child_links(self, sales_table):
        temp = enumerate_temp_classes(sales_table, "count")
        by_id = {t.class_id: t for t in temp}
        for t in temp:
            if t.child_id == -1:
                assert t.lower_bound == (ALL, ALL, ALL)
            else:
                child = by_id[t.child_id]
                # The lower bound is the child's upper bound with exactly
                # one more dimension instantiated.
                diff = [
                    j
                    for j in range(3)
                    if child.upper_bound[j] != t.lower_bound[j]
                ]
                assert len(diff) == 1
                assert child.upper_bound[diff[0]] is ALL


class TestInvariants:
    @pytest.mark.parametrize("seed", range(25))
    def test_upper_bounds_are_exactly_closed_cells(self, seed):
        table = make_random_table(seed)
        temp = enumerate_temp_classes(table, "count")
        assert unique_upper_bounds(temp) == closed_cells(table)

    @pytest.mark.parametrize("seed", range(25))
    def test_upper_bound_is_closure_of_lower_bound(self, seed):
        table = make_random_table(seed + 100)
        for t in enumerate_temp_classes(table, "count"):
            assert closure(table, t.lower_bound) == t.upper_bound
            assert generalizes(t.lower_bound, t.upper_bound)

    @pytest.mark.parametrize("seed", range(10))
    def test_states_match_cover_aggregates(self, seed):
        from repro.cube.aggregates import make_aggregate

        table = make_random_table(seed + 200)
        agg = make_aggregate(("sum", "m"))
        for t in enumerate_temp_classes(table, agg):
            rows = table.select(t.upper_bound)
            assert abs(t.state - agg.state(table, rows)) < 1e-9

    def test_each_class_expanded_once(self):
        # Redundant (pruned) rediscoveries are recorded but never expanded:
        # the number of temp classes stays polynomial in practice, and the
        # first record per upper bound is the expansion.
        table = make_random_table(7, n_dims=4, cardinality=3, n_rows=10)
        temp = enumerate_temp_classes(table, "count")
        firsts = {}
        for t in temp:
            firsts.setdefault(t.upper_bound, 0)
            firsts[t.upper_bound] += 1
        assert all(count >= 1 for count in firsts.values())

    def test_empty_table(self):
        table = make_random_table(0, n_rows=1).without_rows([0])
        assert enumerate_temp_classes(table, "count") == []

    def test_visitor_sees_every_record(self):
        table = make_random_table(3)
        seen = []
        temp = enumerate_temp_classes(
            table, "count", visitor=lambda t, rows: seen.append(t.class_id)
        )
        assert seen == [t.class_id for t in temp]


class TestPartitionClosure:
    def test_fills_constant_dimensions(self, sales_table):
        rows = sales_table.select((0, ALL, ALL))  # store S1
        ub = partition_closure(sales_table, (0, ALL, ALL), rows)
        assert sales_table.decode_cell(ub) == ("S1", "*", "s")

    def test_keeps_existing_values(self, sales_table):
        rows = sales_table.select((ALL, 0, ALL))  # product P1
        ub = partition_closure(sales_table, (ALL, 0, ALL), rows)
        assert sales_table.decode_cell(ub) == ("*", "P1", "*")

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_oracle_closure(self, seed):
        table = make_random_table(seed + 300)
        from tests.conftest import all_cells

        for cell in all_cells(table):
            rows = table.select(cell)
            if rows:
                assert partition_closure(table, cell, rows) == closure(
                    table, cell
                )
