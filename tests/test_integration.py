"""End-to-end integration tests: realistic pipelines across modules."""

import random

import pytest

from repro.core.construct import build_qctree
from repro.core.iceberg import MeasureIndex, pure_iceberg
from repro.core.point_query import point_query
from repro.core.range_query import range_query
from repro.core.warehouse import QCWarehouse
from repro.cube.buc import buc
from repro.cube.schema import Schema
from repro.data.synthetic import zipf_table
from repro.data.weather import weather_table
from repro.data.workloads import point_query_workload, range_query_workload
from repro.dwarf.build import build_dwarf
from repro.dwarf.query import dwarf_point_query, dwarf_range_query
from repro.storage import compression_report
from tests.conftest import approx_equal


class TestThreeStructuresAgree:
    """QC-tree, Dwarf, and BUC must answer every workload identically."""

    @pytest.fixture(scope="class")
    def setup(self):
        table = zipf_table(400, 4, 10, seed=11)
        agg = ("sum", "M0")
        return {
            "table": table,
            "tree": build_qctree(table, agg),
            "dwarf": build_dwarf(table, agg),
            "cube": buc(table, agg),
        }

    def test_point_workload(self, setup):
        queries = point_query_workload(setup["table"], 300, seed=1)
        for q in queries:
            a = point_query(setup["tree"], q)
            b = dwarf_point_query(setup["dwarf"], q)
            c = setup["cube"].get(q)
            assert approx_equal(a, b) and approx_equal(a, c), q

    def test_range_workload(self, setup):
        specs = range_query_workload(setup["table"], 40, seed=2)
        for spec in specs:
            a = range_query(setup["tree"], spec)
            b = dwarf_range_query(setup["dwarf"], spec)
            assert set(a) == set(b)
            for cell in a:
                assert approx_equal(a[cell], b[cell])

    def test_iceberg_against_cube_scan(self, setup):
        index = MeasureIndex(setup["tree"])
        threshold = 500.0
        classes = dict(pure_iceberg(setup["tree"], threshold, index=index))
        # Every cube cell clearing the threshold maps into a returned class.
        from repro.cube.lattice import closure

        for cell, value in setup["cube"].items():
            if value >= threshold:
                ub = closure(setup["table"], cell)
                assert ub in classes
                assert approx_equal(classes[ub], value)


class TestWeatherPipeline:
    def test_full_lifecycle_on_weather_data(self):
        table = weather_table(250, scale=0.01, seed=4, n_dims=5)
        wh = QCWarehouse(table, aggregate=("avg", "temperature"))
        # Query, update, query, delete, and stay rebuild-consistent.
        first_station = table.decode_value(0, table.rows[0][0])
        before = wh.point((first_station, "*", "*", "*", "*"))
        assert before is not None
        new_records = [
            rec for rec in list(table.iter_records())[:5]
        ]
        wh.insert(new_records)
        wh.delete(new_records)
        rebuilt = build_qctree(wh.table, wh.aggregate)
        assert wh.tree.equivalent_to(rebuilt)

    def test_compression_report_shapes(self):
        """Directional sanity on Figure 12's headline claim: quotient
        structures compress the cube, and the QC-tree's overhead over the
        QC-table is bounded (nodes + links vs flat bound rows)."""
        table = zipf_table(600, 5, 15, seed=3)
        report = compression_report(table, "count")
        assert report["qc_table_ratio_pct"] < 100.0
        assert report["qctree_ratio_pct"] < 100.0
        assert report["dwarf_ratio_pct"] < 100.0


class TestDailyLoadScenario:
    def test_week_of_daily_batches(self):
        """A warehouse absorbing daily inserts plus corrections stays
        identical to nightly rebuilds."""
        rng = random.Random(0)
        schema = Schema(
            dimensions=("store", "product", "day"), measures=("sales",)
        )
        stores = [f"S{i}" for i in range(4)]
        products = [f"P{i}" for i in range(5)]

        def day_batch(day):
            return [
                (rng.choice(stores), rng.choice(products), f"D{day}",
                 float(rng.randint(1, 50)))
                for _ in range(rng.randint(3, 8))
            ]

        wh = QCWarehouse.from_records(day_batch(0), schema,
                                      aggregate=("sum", "sales"))
        for day in range(1, 7):
            batch = day_batch(day)
            wh.insert(batch)
            # A correction: retract one record from the batch.
            wh.delete([batch[0]])
            rebuilt = build_qctree(wh.table, wh.aggregate)
            assert wh.tree.equivalent_to(rebuilt), f"day {day}"
        assert wh.point(("*", "*", "*")) is not None
