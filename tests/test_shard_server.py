"""ShardServer behavior: multi-process serving, routing, hygiene.

The multi-process server must present exactly the thread server's
surface (same ops, same answers, same stats ledger) while running reads
in forked worker processes over one shared-memory snapshot — and must
leave *nothing* behind on shutdown: no threads, no processes, and no
``/dev/shm/qctree-*`` segments (the shared-memory analogue of the
``leaked_threads`` guard).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.cells import ALL
from repro.core.warehouse import QCWarehouse
from repro.errors import QueryError, ServerClosedError, ServingError
from repro.shard import (
    ShardRouter,
    ShardServer,
    active_segments,
    created_segments,
)

from .conftest import approx_equal


@pytest.fixture
def warehouse(sales_table):
    return QCWarehouse(sales_table, aggregate="avg(Sale)")


@pytest.fixture
def server(warehouse):
    srv = ShardServer(warehouse, processes=2, queue_size=32)
    yield srv
    srv.close()
    assert created_segments() == []


def wait_until(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestQueries:
    def test_point_range_iceberg(self, server):
        assert server.point(("S2", "*", "f")) == 9.0
        assert server.range((["S1", "S2"], "*", "s")) == {
            ("S1", "*", "s"): 9.0
        }
        results = dict(server.iceberg(9.0))
        assert results[("S1", "P2", "s")] == 12.0

    def test_exploration_ops_match_warehouse(self, server, warehouse):
        cell = ("S2", "P1", "f")
        for op, method in [
            ("rollup", warehouse.rollup),
            ("rollups", warehouse.rollups),
            ("drilldowns", warehouse.drilldowns),
            ("rollup_exceptions", warehouse.rollup_exceptions),
            ("open_class", warehouse.open_class),
            ("class_of", warehouse.class_of),
        ]:
            assert server.query(op, cell) == method(cell)

    def test_answers_come_from_worker_processes(self, server):
        # Uncached distinct cells must travel the pipe, not the parent.
        for product in ("P1", "P2"):
            server.point(("S1", product, "s"))
        shard = server.shard_health()
        assert sum(w["answered"] for w in shard["workers"]) >= 2

    def test_worker_error_propagates(self, server):
        with pytest.raises(QueryError):
            server.query("rollup", ("S1", "P1", "f"))  # not a class cell

    def test_register_op_runs_parent_side(self, server):
        server.register_op("n_rows", lambda snap: snap.describe()["n_rows"])
        answered_before = sum(
            w["answered"] for w in server.shard_health()["workers"]
        )
        assert server.query("n_rows") == 3
        answered_after = sum(
            w["answered"] for w in server.shard_health()["workers"]
        )
        assert answered_after == answered_before

    def test_cache_still_works(self, server):
        for _ in range(3):
            server.point(("S2", "*", "f"))
        assert server.stats()["cache"]["hits"] >= 2


class TestWrites:
    def test_insert_publishes_new_epoch_to_fleet(self, server):
        assert server.point(("S3", "P1", "s")) is None
        server.insert([("S3", "P1", "s", 5.0)])
        assert server.point(("S3", "P1", "s")) == 5.0
        shard = server.shard_health()
        assert shard["current_epoch"] == 2
        assert shard["publishes"] == 1
        assert wait_until(lambda: all(
            w["attached_epoch"] == 2
            for w in server.shard_health()["workers"]
        ))

    def test_old_segments_are_garbage_collected(self, server):
        for i in range(3):
            server.insert([(f"S{i + 4}", "P1", "s", 1.0)])
        assert wait_until(lambda: all(
            w["attached_epoch"] == 4
            for w in server.shard_health()["workers"]
        ))
        server.insert([("S9", "P1", "s", 1.0)])
        # Only the current epoch's segment should remain registered.
        assert wait_until(lambda: len(created_segments()) == 1)

    def test_delete_matches_thread_server(self, server):
        server.delete([("S1", "P2", "s", 12.0)])
        assert server.point(("S1", "P2", "s")) is None
        assert server.point(("*", "*", "*")) == 7.5


class TestMapQuery:
    def test_results_in_input_order(self, server, warehouse):
        cells = [("S1", "P1", "s"), ("S2", "P1", "f"),
                 ("S1", "*", "*"), ("*", "*", "*"),
                 ("S1", "P2", "s"), ("missing", "P1", "s")]
        # An unknown label is a "no such cell" → None, not an error.
        expected = [warehouse.point(c) for c in cells[:-1]] + [None]
        got = server.map_query("point", [(c,) for c in cells])
        assert all(approx_equal(g, e) for g, e in zip(got, expected))

    def test_bulk_keeps_ledger_balanced(self, server):
        calls = [(("S1", "P1", "s"),)] * 10
        server.map_query("point", calls)
        counters = server.stats()["counters"]
        assert counters["submitted"] >= 10
        assert counters["submitted"] == (
            counters["completed"] + counters["timeouts"]
            + counters["errors"] + counters["cancelled"]
        )

    def test_non_snapshot_op_rejected(self, server):
        with pytest.raises(QueryError, match="map_query"):
            server.map_query("stats", [()])

    def test_spreads_across_fleet(self, server):
        cells = [(f"S{i}", "P1", "s") for i in range(40)]
        server.map_query("point", [(c,) for c in cells])
        answered = [w["answered"] for w in server.shard_health()["workers"]]
        assert all(a > 0 for a in answered)


class TestStatsAndHealth:
    def test_stats_has_shard_block(self, server):
        shard = server.stats()["shard"]
        assert shard["processes_configured"] == 2
        assert shard["processes_alive"] == 2
        assert shard["process_restarts"] == 0
        assert shard["current_epoch"] == 1
        assert shard["snapshot_bytes"] > 0
        assert len(shard["workers"]) == 2
        for worker in shard["workers"]:
            assert worker["alive"]
            assert worker["attached_epoch"] == 1
        assert "publish_detach_wait_us" in shard

    def test_health_report_has_shard_block(self, server):
        from repro.serving.health import health_report

        report = health_report(server)
        assert report["status"] == "ok"
        assert report["shard"]["processes_alive"] == 2

    def test_shard_phase_histograms_after_publish(self, server):
        server.insert([("S3", "P1", "s", 5.0)])
        phases = server.stats()["shard_phases"]
        assert phases["pack"]["count"] >= 1
        assert phases["publish_detach_wait"]["count"] >= 1


class TestConstruction:
    def test_rejects_zero_processes(self, warehouse):
        with pytest.raises(ValueError):
            ShardServer(warehouse, processes=0)

    def test_rejects_dict_engine_warehouse(self, sales_table):
        warehouse = QCWarehouse(
            sales_table, aggregate="avg(Sale)", serve_frozen=False
        )
        with pytest.raises(ServingError, match="frozen"):
            ShardServer(warehouse, processes=1)
        assert created_segments() == []

    def test_closed_server_rejects_queries(self, warehouse):
        server = ShardServer(warehouse, processes=1)
        server.close()
        with pytest.raises(ServerClosedError):
            server.point(("S1", "P1", "s"))
        with pytest.raises(ServerClosedError):
            server.map_query("point", [(("S1", "P1", "s"),)])


class TestRouter:
    def test_prefix_key_bound_first_dimension(self):
        assert ShardRouter.prefix_key("point", (("S1", "*", "f"),)) == "S1"
        assert ShardRouter.prefix_key("range", ((3, ALL),)) == 3

    def test_prefix_key_unbound_cases(self):
        assert ShardRouter.prefix_key("point", (("*", "P1"),)) is None
        assert ShardRouter.prefix_key("point", ((ALL, "P1"),)) is None
        assert ShardRouter.prefix_key("range", ((["S1", "S2"], "*"),)) is None
        assert ShardRouter.prefix_key("iceberg", (9.0,)) is None
        assert ShardRouter.prefix_key("point", ()) is None

    def test_prefixed_requests_are_sticky(self):
        router = ShardRouter()
        slots = {
            router.slot("point", (("S1", "*", "f"),), 4) for _ in range(10)
        }
        assert len(slots) == 1

    def test_sticky_slot_is_seed_independent(self):
        assert ShardRouter(seed=0).slot(
            "point", (("S1",),), 4
        ) == ShardRouter(seed=99).slot("point", (("S1",),), 4)

    def test_unprefixed_requests_round_robin(self):
        router = ShardRouter()
        slots = [router.slot("iceberg", (9.0,), 4) for _ in range(8)]
        assert slots == [0, 1, 2, 3, 0, 1, 2, 3]


class TestHygiene:
    def test_close_leaves_nothing(self, warehouse):
        server = ShardServer(warehouse, processes=2)
        server.point(("S1", "P1", "s"))
        server.insert([("S3", "P1", "s", 5.0)])
        procs = [h.proc for h in server._handles]
        server.close()
        server.close()  # idempotent
        assert created_segments() == []
        assert active_segments() == []
        for proc in procs:
            # close() released the Process object entirely.
            with pytest.raises(ValueError):
                proc.is_alive()
        assert not [
            t for t in threading.enumerate()
            if t.name.startswith(server.name)
        ]

    def test_context_manager_cleans_up(self, warehouse):
        with ShardServer(warehouse, processes=1) as server:
            assert server.point(("S2", "*", "f")) == 9.0
        assert created_segments() == []

    def test_sigterm_leaves_no_segments(self, tmp_path):
        """A supervisor SIGTERM must not leave /dev/shm litter."""
        script = tmp_path / "serve_until_term.py"
        script.write_text(
            "import signal, sys\n"
            "from repro.core.warehouse import QCWarehouse\n"
            "from repro.cube.schema import Schema\n"
            "from repro.cube.table import BaseTable\n"
            "from repro.shard import ShardServer, install_signal_cleanup\n"
            "schema = Schema(dimensions=('A', 'B'), measures=('m',))\n"
            "table = BaseTable.from_records(\n"
            "    [('a1', 'b1', 1.0), ('a2', 'b2', 2.0)], schema)\n"
            "install_signal_cleanup()\n"
            "server = ShardServer(QCWarehouse(table, aggregate='sum(m)'),\n"
            "                     processes=2)\n"
            "print('READY', flush=True)\n"
            "signal.pause()\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), os.pardir, "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            mine = [s for s in active_segments()
                    if s.startswith(f"qctree-{proc.pid}-")]
            assert mine, "server should have published a segment"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        leftovers = [s for s in active_segments()
                     if s.startswith(f"qctree-{proc.pid}-")]
        assert leftovers == []
