"""Unit and model-based property tests for the B+-tree (repro.index.bptree)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.index.bptree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.search(1) == []
        assert list(tree.items()) == []
        assert tree.min_key() is None and tree.max_key() is None

    def test_order_too_small_rejected(self):
        with pytest.raises(QueryError):
            BPlusTree(order=2)

    def test_insert_search(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(3, "b")
        assert tree.search(5) == ["a"]
        assert tree.search(4) == []

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert sorted(tree.search(5)) == ["a", "b"]
        assert len(tree) == 2

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        for key in [9, 2, 7, 4, 1, 8]:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [1, 2, 4, 7, 8, 9]

    def test_min_max(self):
        tree = BPlusTree(order=4)
        for key in [9, 2, 7]:
            tree.insert(key, key)
        assert tree.min_key() == 2 and tree.max_key() == 9


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 20, 2):
            tree.insert(key, key)
        return tree

    def test_closed_range(self, tree):
        assert [k for k, _ in tree.range_scan(4, 10)] == [4, 6, 8, 10]

    def test_open_low(self, tree):
        assert [k for k, _ in tree.range_scan(high=4)] == [0, 2, 4]

    def test_open_high(self, tree):
        assert [k for k, _ in tree.range_scan(low=14)] == [14, 16, 18]

    def test_exclusive_bounds(self, tree):
        assert [
            k for k, _ in tree.range_scan(4, 10, include_low=False,
                                          include_high=False)
        ] == [6, 8]

    def test_bounds_between_keys(self, tree):
        assert [k for k, _ in tree.range_scan(3, 7)] == [4, 6]

    def test_empty_range(self, tree):
        assert list(tree.range_scan(100, 200)) == []


class TestDeletionRebalancing:
    def test_remove_missing_returns_false(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert not tree.remove(2, "a")
        assert not tree.remove(1, "b")
        assert len(tree) == 1

    def test_remove_one_duplicate(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.remove(1, "a")
        assert tree.search(1) == ["b"]

    def test_drain_completely(self):
        tree = BPlusTree(order=4)
        keys = list(range(200))
        random.Random(0).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        tree.check_invariants()
        random.Random(1).shuffle(keys)
        for key in keys:
            assert tree.remove(key, key)
            tree.check_invariants()
        assert len(tree) == 0

    @pytest.mark.parametrize("order", [3, 4, 8, 32])
    def test_invariants_under_mixed_workload(self, order):
        rng = random.Random(order)
        tree = BPlusTree(order=order)
        model = {}
        for step in range(600):
            key = rng.randrange(50)
            if rng.random() < 0.6 or key not in model:
                tree.insert(key, step)
                model.setdefault(key, []).append(step)
            else:
                payload = rng.choice(model[key])
                assert tree.remove(key, payload)
                model[key].remove(payload)
                if not model[key]:
                    del model[key]
            if step % 50 == 0:
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == sum(len(v) for v in model.values())
        for key, payloads in model.items():
            assert sorted(tree.search(key)) == sorted(payloads)


class TestModelBased:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 20), st.integers(0, 5)),
            max_size=120,
        ),
        st.sampled_from([3, 4, 7, 16]),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_dict_model(self, ops, order):
        tree = BPlusTree(order=order)
        model = {}
        for is_insert, key, payload in ops:
            if is_insert:
                tree.insert(key, payload)
                model.setdefault(key, []).append(payload)
            else:
                removed = tree.remove(key, payload)
                expected = key in model and payload in model[key]
                assert removed == expected
                if expected:
                    model[key].remove(payload)
                    if not model[key]:
                        del model[key]
        tree.check_invariants()
        expected_items = sorted(
            (k, p) for k, ps in model.items() for p in ps
        )
        assert sorted(tree.items()) == expected_items

    @given(st.lists(st.integers(0, 100), max_size=80),
           st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_range_scan_matches_filter(self, keys, low, high):
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(low, high)]
        expected = sorted(k for k in keys if low <= k <= high)
        assert got == expected
