"""The differential maintenance oracle for the batched engine.

Random mutation programs — sequences of mixed insert/delete batches —
are executed three ways and must be indistinguishable:

* **batched**: one :func:`~repro.core.maintenance.maintain_batch` call
  per batch (the fast path under test);
* **sequential**: the same tuples one single-tuple maintenance call at
  a time (the paper's Algorithms 5–7 as literally written, the
  already-proven baseline);
* **rebuild**: :func:`~repro.core.construct.build_qctree` from scratch
  on the final base table (Theorem 2's ground truth).

Equality is asserted at three depths: node-for-node tree structure
(paths, links, aggregates via the order-independent signature), the
class upper-bound *sets*, and point/range/iceberg answer parity on both
the dict and the frozen serving engines.

Delete-by-key is ambiguous when two rows share dimensions but carry
different measures (either row "matches"); the generator therefore
derives every measure deterministically from its dimension values, so
duplicate rows are still exercised — as true duplicates — without the
oracle tripping over which physical copy an engine dropped first.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import build_qctree
from repro.core.maintenance import (
    maintain_batch,
    apply_deletions,
    apply_insertions,
)
from repro.core.warehouse import QCWarehouse
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from tests.conftest import approx_equal

N_DIMS = 3
CARD = 3
FRESH = 2  # extra labels per dimension a program may mint


def _measure(dims) -> float:
    """Measure as a pure function of the key (see module docstring)."""
    return float((3 * dims[0] + 5 * dims[1] + 7 * dims[2]) % 10 + 1)


def _gen_record(rng, fresh=False):
    dims = []
    for _ in range(N_DIMS):
        if fresh and rng.random() < 0.3:
            dims.append(CARD + rng.randrange(FRESH))
        else:
            dims.append(rng.randrange(CARD))
    dims = tuple(dims)
    return dims + (_measure(dims),)


def _base_table(rng, n_rows):
    schema = Schema(
        dimensions=[f"D{j}" for j in range(N_DIMS)], measures=("m",)
    )
    rows = [
        tuple(rng.randrange(CARD) for _ in range(N_DIMS))
        for _ in range(n_rows)
    ]
    measures = [[_measure(r)] for r in rows]
    return BaseTable.from_encoded(
        rows, measures, schema, cardinalities=[CARD] * N_DIMS
    )


def make_program(seed, n_batches, n_rows=None, max_batch=5):
    """A feasible random mutation program.

    Returns ``(base_table, batches, final_records)`` where each batch is
    ``(inserts, deletes)`` — deletes always reference rows present at
    that point of the program (delete-before-insert within the batch,
    matching the engines' §3.3 ordering), and ~1 in 3 insert batches
    contains a duplicated record.
    """
    rng = random.Random(seed)
    table = _base_table(rng, rng.randint(0, 12) if n_rows is None else n_rows)
    current = list(table.iter_records())
    batches = []
    for _ in range(n_batches):
        n_del = rng.randint(0, min(3, len(current)))
        deletes = rng.sample(current, n_del) if n_del else []
        for record in deletes:
            current.remove(record)
        n_ins = rng.randint(0 if deletes else 1, max_batch)
        inserts = [
            _gen_record(rng, fresh=rng.random() < 0.4) for _ in range(n_ins)
        ]
        if inserts and rng.random() < 0.3:
            inserts.append(rng.choice(inserts))  # in-batch duplicate
        current.extend(inserts)
        batches.append((inserts, deletes))
    return table, batches, current


# -- the three executions ----------------------------------------------------


def run_batched(table, batches):
    tree = build_qctree(table, ("sum", "m"))
    for inserts, deletes in batches:
        result = maintain_batch(tree, table, inserts=inserts, deletes=deletes)
        table = result.table
    return tree, table


def run_sequential(table, batches):
    """One single-tuple maintenance call per tuple — the proven baseline."""
    tree = build_qctree(table, ("sum", "m"))
    for inserts, deletes in batches:
        for record in deletes:
            table = apply_deletions(tree, table, [record])
        for record in inserts:
            table = apply_insertions(tree, table, [record])
    return tree, table


def run_rebuild(final_records):
    schema = Schema(
        dimensions=[f"D{j}" for j in range(N_DIMS)], measures=("m",)
    )
    table = BaseTable.from_records(final_records, schema)
    return build_qctree(table, ("sum", "m")), table


# -- equality at three depths ------------------------------------------------


def decoded_signature(tree, table):
    """The tree signature with every label decoded to its raw form.

    Two engines that minted fresh labels in different orders assign them
    different internal codes; the decoded signature abstracts the
    encoding away so trees over the same *raw* data compare equal —
    node for node, link for link.
    """
    paths, links, classes = tree.signature()
    dec = table.decode_cell
    return (
        tuple(sorted((dec(c) for c in paths), key=repr)),
        tuple(sorted(
            ((dec(s), j, table.decode_value(j, v), dec(t))
             for s, j, v, t in links),
            key=repr,
        )),
        tuple(sorted(((dec(ub), val) for ub, val in classes), key=repr)),
    )


def assert_trees_equal(a, table_a, b, table_b, label):
    """Node-for-node equality: same paths, links, and class aggregates."""
    sig_a = decoded_signature(a, table_a)
    sig_b = decoded_signature(b, table_b)
    assert sig_a[0] == sig_b[0], f"{label}: path sets differ"
    assert sig_a[1] == sig_b[1], f"{label}: link sets differ"
    classes_a, classes_b = sig_a[2], sig_b[2]
    assert len(classes_a) == len(classes_b), f"{label}: class counts differ"
    assert [ub for ub, _ in classes_a] == [ub for ub, _ in classes_b], (
        f"{label}: class upper-bound sets differ"
    )
    for (ub, val_a), (_, val_b) in zip(classes_a, classes_b):
        assert approx_equal(val_a, val_b), f"{label}: value at {ub}"


def _label_universe(records):
    """Per-dimension raw label domains of the final state (plus ``*``)."""
    domains = [set() for _ in range(N_DIMS)]
    for record in records:
        for j in range(N_DIMS):
            domains[j].add(record[j])
    for j in range(N_DIMS):
        domains[j].add(CARD)  # one never-seen label (must answer None)
    return [sorted(d) for d in domains]


def _raw_cells(domains):
    out = [()]
    for labels in domains:
        out = [cell + (v,) for cell in out for v in ["*"] + labels]
    return out


def assert_answers_equal(wh_a, wh_b, records, label, rng):
    """Point / range / iceberg parity between two warehouses."""
    domains = _label_universe(records)
    for cell in _raw_cells(domains):
        assert approx_equal(wh_a.point(cell), wh_b.point(cell)), (
            f"{label}: point({cell!r})"
        )
    for _ in range(3):
        spec = tuple(
            "*" if rng.random() < 0.4
            else rng.sample(d, min(len(d), 2))
            for d in domains
        )
        assert wh_a.range(spec) == wh_b.range(spec), f"{label}: range({spec!r})"
    for threshold in (1.0, 5.0, 20.0):
        assert Counter(wh_a.iceberg(threshold)) == \
            Counter(wh_b.iceberg(threshold)), f"{label}: iceberg({threshold})"


def _warehouse(tree, table, frozen):
    return QCWarehouse(
        table, ("sum", "m"), tree=tree, serve_frozen=frozen, cache_size=0
    )


def check_program(seed, n_batches, n_rows=None, max_batch=5):
    """The full three-way differential check for one program."""
    table, batches, final_records = make_program(
        seed, n_batches, n_rows=n_rows, max_batch=max_batch
    )
    batched_tree, batched_table = run_batched(table, batches)
    seq_tree, seq_table = run_sequential(table, batches)
    rebuilt_tree, rebuilt_table = run_rebuild(final_records)

    assert sorted(batched_table.iter_records()) == sorted(final_records)
    assert sorted(seq_table.iter_records()) == sorted(final_records)

    # Theorem 2 exactly: the batched tree is *identical* (same internal
    # encoding, exact signature) to a from-scratch build of its own
    # final table.
    assert batched_tree.signature() == \
        build_qctree(batched_table, ("sum", "m")).signature()

    assert_trees_equal(batched_tree, batched_table, seq_tree, seq_table,
                       "batched vs sequential")
    assert_trees_equal(batched_tree, batched_table, rebuilt_tree,
                       rebuilt_table, "batched vs rebuild")

    rng = random.Random(seed ^ 0xBEEF)
    for frozen in (False, True):
        engine = "frozen" if frozen else "dict"
        assert_answers_equal(
            _warehouse(batched_tree, batched_table, frozen),
            _warehouse(seq_tree, seq_table, frozen),
            final_records, f"batched vs sequential [{engine}]", rng,
        )
        assert_answers_equal(
            _warehouse(batched_tree, batched_table, frozen),
            _warehouse(rebuilt_tree, rebuilt_table, frozen),
            final_records, f"batched vs rebuild [{engine}]", rng,
        )


# -- the oracle --------------------------------------------------------------


class TestDifferentialOracle:
    @settings(max_examples=30)
    @given(seed=st.integers(0, 10_000), n_batches=st.integers(1, 5))
    def test_random_programs(self, seed, n_batches):
        check_program(seed, n_batches)

    @settings(max_examples=10)
    @given(seed=st.integers(0, 10_000))
    def test_large_batches_small_table(self, seed):
        """Batches larger than the table itself."""
        check_program(seed, n_batches=2, n_rows=3, max_batch=10)

    @pytest.mark.parametrize("seed", range(8))
    def test_pinned_programs(self, seed):
        """A deterministic corpus that always runs, hypothesis aside."""
        check_program(seed, n_batches=4)


class TestBatchEdgeCases:
    def _table(self, seed, n_rows=10):
        rng = random.Random(seed)
        table = _base_table(rng, n_rows)
        return table, build_qctree(table, ("sum", "m")), rng

    def test_empty_batch_is_noop(self):
        table, tree, _ = self._table(0)
        before = tree.signature()
        result = maintain_batch(tree, table)
        assert result.stats["noop"]
        assert result.table is table
        assert len(result.delta) == 0
        assert tree.signature() == before

    def test_duplicate_insert_batch(self):
        """k copies of one tuple in a batch contribute k times (multiset)."""
        table, tree, rng = self._table(1)
        record = _gen_record(rng)
        result = maintain_batch(tree, table, inserts=[record] * 3)
        rebuilt, rebuilt_table = run_rebuild(
            list(table.iter_records()) + [record] * 3
        )
        assert_trees_equal(tree, result.table, rebuilt, rebuilt_table,
                           "triple insert vs rebuild")
        assert result.stats["inserted"] == 3

    def test_duplicate_delete_batch(self):
        """Deleting k copies needs k matching rows, consumed exactly."""
        table, tree, rng = self._table(2)
        record = _gen_record(rng)
        table = maintain_batch(tree, table, inserts=[record] * 2).table
        table = maintain_batch(tree, table, deletes=[record] * 2).table
        rebuilt, rebuilt_table = run_rebuild(list(table.iter_records()))
        assert_trees_equal(tree, table, rebuilt, rebuilt_table,
                           "double delete vs rebuild")

    def test_modification_batch(self):
        """A record in both lists is removed then re-added (§3.3)."""
        table, tree, _ = self._table(3)
        victim = list(table.iter_records())[0]
        replacement = (9, 9, 9, _measure((9, 9, 9)))
        result = maintain_batch(
            tree, table, inserts=[replacement], deletes=[victim]
        )
        final = list(table.iter_records())
        final.remove(victim)
        final.append(replacement)
        rebuilt, rebuilt_table = run_rebuild(final)
        assert_trees_equal(tree, result.table, rebuilt, rebuilt_table,
                           "modification vs rebuild")
        assert result.stats["inserted"] == result.stats["deleted"] == 1

    def test_self_cancelling_batch(self):
        """Delete X + insert X in one batch must round-trip exactly."""
        table, tree, _ = self._table(4)
        before = tree.signature()
        victim = list(table.iter_records())[0]
        result = maintain_batch(tree, table, inserts=[victim],
                                deletes=[victim])
        assert tree.signature() == before
        assert sorted(result.table.iter_records()) == \
            sorted(table.iter_records())

    def test_delete_everything_batch(self):
        table, tree, _ = self._table(5, n_rows=6)
        result = maintain_batch(
            tree, table, deletes=list(table.iter_records())
        )
        assert result.table.n_rows == 0
        assert tree.n_classes == 0

    def test_bad_delete_fails_whole_batch(self):
        """One unmatched delete rolls back the entire mixed batch."""
        from repro.errors import MaintenanceError

        table, tree, rng = self._table(6)
        before = tree.signature()
        with pytest.raises(MaintenanceError):
            maintain_batch(
                tree, table,
                inserts=[_gen_record(rng)],
                deletes=[(99, 99, 99, 1.0)],
            )
        assert tree.signature() == before

    def test_one_merged_delta_per_batch(self):
        """A mixed batch records exactly one delta, patchable in one go."""
        table, tree, rng = self._table(7)
        frozen = tree.freeze()
        deletes = [list(table.iter_records())[0]]
        inserts = [_gen_record(rng, fresh=True) for _ in range(4)]
        result = maintain_batch(tree, table, inserts=inserts, deletes=deletes)
        patched = frozen.patch(result.delta, full_refreeze_ratio=1.0)
        assert patched.signature() == tree.freeze().signature()

    def test_insert_order_independence(self):
        """The batch sort is semantics-free: any input order, same tree."""
        table, tree_a, rng = self._table(8)
        inserts = [_gen_record(rng, fresh=True) for _ in range(6)]
        tree_b = build_qctree(table, ("sum", "m"))
        shuffled = list(inserts)
        rng.shuffle(shuffled)
        maintain_batch(tree_a, table, inserts=inserts)
        maintain_batch(tree_b, table, inserts=shuffled)
        assert tree_a.signature() == tree_b.signature()
