"""Differential oracle: asyncio transport ≡ direct ``QCServer.submit``.

Every answer that crosses the TCP front door must be byte-identical to
what the same request produces through the in-process future API — the
transport is a carrier, never an interpreter.  Hypothesis drives random
programs over all ten snapshot ops (plus writes mid-stream), and each
transport answer is compared against the expected response *formatted
through the same protocol module*, so any divergence is in the
transport, not the formatting.

The shard-server leg runs the same program shape against a forked
multi-process fleet (seeded ``random`` programs rather than hypothesis:
a process fleet per hypothesis example would dominate the suite's
runtime without adding coverage — the transport code under test is
identical either way).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.warehouse import QCWarehouse
from repro.serving import AsyncServerThread, LineClient, QCServer, protocol
from repro.shard import ShardServer

from .conftest import make_random_table

#: Ops whose request line takes one cell argument.
CELL_COMMANDS = (
    "point", "rollup", "rollups", "drilldowns", "rollup_exceptions",
    "class", "open",
)


def expected_response(server, parsed: protocol.ParsedLine) -> str:
    """What the transport must answer, computed through the direct
    future API and the shared formatter."""
    try:
        if parsed.kind == "write":
            getattr(server, parsed.command)([parsed.args[0]])
            return protocol.format_response(parsed, None)
        value = server.submit(parsed.op, *parsed.args,
                              timeout=parsed.timeout).result()
        return protocol.format_response(parsed, value)
    except Exception as exc:
        return protocol.format_error(exc)


def assert_answers_match(got: str, want: str, line: str) -> None:
    if got.startswith("error:"):
        # Compare by error *type*: message text may embed state that a
        # concurrent run could phrase differently; the wire contract
        # clients dispatch on is the type prefix.
        assert got.split(":")[1] == want.split(":")[1], (line, got, want)
    elif line.split()[-1] == "health":
        # Health answers embed live readings (heartbeat age, transport
        # request counters) that tick between the two calls; the oracle
        # property is the stable routing verdict.
        import json

        got_d, want_d = json.loads(got), json.loads(want)
        for key in ("status", "live", "ready", "closed"):
            assert got_d[key] == want_d[key], (key, got, want)
    else:
        assert got == want, (line, got, want)


def check_line(client, server, table, line: str) -> None:
    got = client.call(line)
    parsed = protocol.parse_line(line, n_dims=table.n_dims)
    want = expected_response(server, parsed)
    assert_answers_match(got, want, line)


def render_cell(table, values) -> str:
    return ",".join(
        "*" if v is None else str(table.decode_value(j, v % max(
            1, table.cardinality(j))))
        for j, v in enumerate(values)
    )


def program_lines(table, rng: random.Random, n: int) -> list:
    """``n`` random request lines exercising every op family."""
    lines = []
    for _ in range(n):
        roll = rng.random()
        cell = render_cell(
            table,
            [None if rng.random() < 0.4 else rng.randrange(8)
             for _ in range(table.n_dims)],
        )
        if roll < 0.55:
            command = rng.choice(CELL_COMMANDS)
            lines.append(f"{command} {cell}")
        elif roll < 0.7:
            spec = []
            for j in range(table.n_dims):
                r = rng.random()
                card = max(1, table.cardinality(j))
                if r < 0.3:
                    spec.append("*")
                elif r < 0.6:
                    spec.append(str(table.decode_value(j, rng.randrange(card))))
                else:
                    spec.append("|".join(
                        str(table.decode_value(j, c))
                        for c in rng.sample(range(card), min(2, card))
                    ))
            lines.append("range " + ",".join(spec))
        elif roll < 0.85:
            lines.append(f"iceberg {rng.randint(1, 6)} "
                         f"{rng.choice(['>=', '>', '<=', '<'])}")
        elif roll < 0.95:
            lines.append(f"point {cell}")
        else:
            lines.append("health" if rng.random() < 0.5 else f"open {cell}")
    return lines


class WriteStream:
    """Valid mid-stream writes: deletes only remove records previously
    inserted by this stream, so every write succeeds on both paths (a
    *failing* identical batch would be quarantined by the server after
    repeated crashes — correct behavior, but stateful in a way that
    would make the two paths legitimately diverge)."""

    def __init__(self, table, rng: random.Random):
        self.table = table
        self.rng = rng
        self.pool: list = []

    def next_line(self) -> str:
        if self.pool and self.rng.random() < 0.4:
            return f"delete {self.pool.pop()}"
        record = ",".join(
            str(self.table.decode_value(
                j, self.rng.randrange(max(1, self.table.cardinality(j)))
            ))
            for j in range(self.table.n_dims)
        ) + f",{float(self.rng.randint(1, 9))}"
        self.pool.append(record)
        return f"insert {record}"


@pytest.fixture(scope="module")
def thread_setup():
    table = make_random_table(13, n_dims=3, cardinality=3, n_rows=40)
    server = QCServer(QCWarehouse(table, aggregate="sum(m)"), workers=2,
                      cache_size=0)
    handle = AsyncServerThread(server, port=0)
    yield table, server, handle
    handle.close()
    server.close()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_async_answers_equal_direct_submit(thread_setup, seed):
    """Random all-op programs with mid-stream writes: transport answer
    == direct-submit answer, for every line, in order."""
    table, server, handle = thread_setup
    rng = random.Random(seed)
    writes = WriteStream(table, rng)
    client = LineClient(handle.host, handle.port)
    try:
        for i, line in enumerate(program_lines(table, rng, 12)):
            check_line(client, server, table, line)
            if i % 4 == 3:
                # Mid-stream write over the wire; subsequent queries see
                # the new snapshot on both paths.
                check_line(client, server, table, writes.next_line())
    finally:
        client.close()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_pipelined_read_only_oracle(thread_setup, seed):
    """Many requests pipelined before any response is read: responses
    come back in submission order and still match direct submit."""
    table, server, handle = thread_setup
    rng = random.Random(seed ^ 0xA5A5)
    lines = program_lines(table, rng, 10)
    # Read-only lines only: pipelined writes would interleave with the
    # expected-answer computation below.
    lines = [ln for ln in lines if not ln.startswith(("insert", "delete"))]
    client = LineClient(handle.host, handle.port)
    try:
        for line in lines:
            client.send(line)
        for line in lines:
            got = client.read_response()
            parsed = protocol.parse_line(line, n_dims=table.n_dims)
            want = expected_response(server, parsed)
            assert_answers_match(got, want, line)
    finally:
        client.close()


def test_budget_prefix_answers_or_expires(thread_setup):
    """A generous @budget answers normally; queries agree with direct
    submit carrying the same timeout."""
    table, server, handle = thread_setup
    client = LineClient(handle.host, handle.port)
    try:
        line = "@5 point " + ",".join(["*"] * table.n_dims)
        check_line(client, server, table, line)
    finally:
        client.close()


def test_shard_server_oracle_over_async_transport():
    """The same program shape against a forked two-process fleet: the
    transport bridges ``ShardServer.submit`` futures identically,
    mid-stream writes (which republish the shared-memory snapshot)
    included."""
    table = make_random_table(17, n_dims=3, cardinality=3, n_rows=30)
    server = ShardServer(QCWarehouse(table, aggregate="count"),
                         processes=2, cache_size=0)
    handle = None
    try:
        # Transport starts after the fleet forks (the fork-safety order
        # the shard server warns about).
        handle = AsyncServerThread(server, port=0)
        for seed in (1, 2, 3):
            rng = random.Random(seed)
            writes = WriteStream(table, rng)
            client = LineClient(handle.host, handle.port)
            try:
                for i, line in enumerate(program_lines(table, rng, 10)):
                    check_line(client, server, table, line)
                    if i % 5 == 4:
                        check_line(client, server, table,
                                   writes.next_line())
            finally:
                client.close()
    finally:
        if handle is not None:
            handle.close()
        server.close()


def test_transport_registers_in_stats_and_health(thread_setup):
    table, server, handle = thread_setup
    stats = server.stats()
    assert any(
        t["kind"] == "asyncio" and t["listening"]
        for t in stats["transports"]
    )
    report = server.query("health")
    assert report["transports"][0]["port"] == handle.port
    assert report["ready"]
