"""Differential tests for the incremental (long-lived) cover index.

The contract under test: a :class:`CoverIndex` patched in place by
``apply_inserts`` / ``apply_deletes`` is *equivalent* to an index built
from scratch over the final row set — posting-for-posting (after
translating stable ids to table positions) and closure-for-closure —
under arbitrary interleavings of insert batches, delete batches, and
cache-warming queries.  Plus regression tests for the three bugfixes
that rode along: the ``covers_any`` existence probe, constructor
validation, and the unified rows/closure cache.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.core.maintenance import maintain_batch
from repro.core.warehouse import QCWarehouse
from repro.cube.cover_index import CoverIndex
from repro.cube.schema import Schema
from repro.errors import MaintenanceError, SchemaError
from repro.reliability.fsck import fsck_tree
from tests.conftest import make_random_table

N_DIMS = 3
CARD = 4


def all_domain_cells():
    """Every cell over the 3-dim, card-4 test domain (125 cells)."""
    from itertools import product

    domain = [ALL] + list(range(CARD))
    return list(product(domain, repeat=N_DIMS))


CELLS = all_domain_cells()


def assert_equivalent(patched: CoverIndex, model_rows: list) -> None:
    """patched ≡ freshly built, posting- and closure-for-closure."""
    fresh = CoverIndex(rows=model_rows, n_dims=N_DIMS)
    for j in range(N_DIMS):
        assert patched.postings(j) == fresh.postings(j), f"dim {j}"
    for cell in CELLS:
        assert patched.positions(cell) == fresh.rows(cell), cell
        assert patched.closure(cell) == fresh.closure(cell), cell
        assert patched.covers_any(cell) == fresh.covers_any(cell), cell


rows_strategy = st.lists(
    st.tuples(*[st.integers(0, CARD - 1)] * N_DIMS), max_size=6
)
step_strategy = st.tuples(
    rows_strategy,                      # rows to insert
    st.lists(st.integers(0, 200), max_size=4),  # delete picks (mod size)
    st.lists(st.integers(0, len(CELLS) - 1), max_size=8),  # cells to warm
)


class TestIncrementalDifferential:
    @given(
        st.lists(
            st.tuples(*[st.integers(0, CARD - 1)] * N_DIMS),
            min_size=1, max_size=10,
        ),
        st.lists(step_strategy, max_size=6),
    )
    @settings(max_examples=120, deadline=None)
    def test_patched_equals_rebuilt(self, initial, program):
        """Random mutation programs: patched ≡ rebuilt after every step.

        Queries run *before* each mutation so the memo caches are
        populated and the invalidation rule — not an empty cache — is
        what the equivalence check exercises.
        """
        index = CoverIndex(rows=initial, n_dims=N_DIMS)
        model = list(initial)
        for inserts, delete_picks, warm in program:
            # Warm some memo entries against the pre-mutation state.
            for k in warm:
                index.closure_and_rows(CELLS[k])
            # Deletes first (the maintain_batch ordering), de-duplicated
            # positions drawn against the current table size.
            if model and delete_picks:
                positions = sorted({p % len(model) for p in delete_picks})
                index.apply_deletes(positions)
                model = [r for i, r in enumerate(model) if i not in positions]
            if inserts:
                index.apply_inserts(inserts)
                model.extend(inserts)
            assert_equivalent(index, model)

    def test_delete_to_empty_posting_then_reinsert(self):
        """A posting emptied by deletes must vanish (not linger as a
        falsy bucket) and come back on re-insert of the same value."""
        rows = [(0, 1, 2), (0, 1, 3), (1, 2, 2)]
        index = CoverIndex(rows=rows, n_dims=N_DIMS)
        probe = (0, 1, ALL)
        assert index.rows(probe) == frozenset({0, 1})
        index.apply_deletes([0, 1])     # dim-0 value 0 posting empties
        assert index.rows(probe) == frozenset()
        assert not index.covers_any((0, ALL, ALL))
        assert index.closure(probe) is None
        assert_equivalent(index, [(1, 2, 2)])
        # Re-insert a previously deleted value: the cached-empty answer
        # must be invalidated even though its posting did not exist.
        index.apply_inserts([(0, 1, 2)])
        assert index.positions(probe) == frozenset({1})
        assert index.closure(probe) == (0, 1, 2)
        assert_equivalent(index, [(1, 2, 2), (0, 1, 2)])

    def test_delete_everything_then_repopulate(self):
        rows = [(0, 0, 0), (1, 1, 1)]
        index = CoverIndex(rows=rows, n_dims=N_DIMS)
        assert index.covers_any((ALL, ALL, ALL))
        index.apply_deletes([0, 1])
        assert index.n_rows == 0
        assert index.rows((ALL, ALL, ALL)) == frozenset()
        assert not index.covers_any((ALL, ALL, ALL))
        index.apply_inserts([(2, 2, 2)])
        assert index.positions((ALL, ALL, ALL)) == frozenset({0})
        assert_equivalent(index, [(2, 2, 2)])

    def test_untouched_memo_entries_survive_a_patch(self):
        """The point of the exercise: cells sharing no posting with the
        batch keep their cached cover sets and closures."""
        rows = [(0, 0, 0), (1, 1, 1), (2, 2, 2)]
        index = CoverIndex(rows=rows, n_dims=N_DIMS)
        kept, touched = (1, ALL, ALL), (2, ALL, ALL)
        index.closure_and_rows(kept)
        index.closure_and_rows(touched)
        before = index.evictions
        index.apply_inserts([(2, 3, 3)])
        assert kept in index._rows_cache          # survived
        assert kept in index._closure_cache
        assert touched not in index._rows_cache   # shares posting (0, 2)
        assert index.evictions == before + 1
        # The surviving entry is still *correct*, not merely present.
        assert index.closure(kept) == (1, 1, 1)
        assert index.positions(touched) == frozenset({2, 3})

    def test_eviction_counter_counts_rows_entries(self):
        rows = [(0, 0, 0), (1, 1, 1)]
        index = CoverIndex(rows=rows, n_dims=N_DIMS)
        index.rows((0, ALL, ALL))
        index.rows((1, ALL, ALL))
        index.rows((ALL, ALL, ALL))     # general cell: dropped every patch
        assert index.evictions == 0
        index.apply_inserts([(0, 3, 3)])
        # (0,*,*) touches posting (0,0); (*,*,*) is general; (1,*,*) kept.
        assert index.evictions == 2
        assert (1, ALL, ALL) in index._rows_cache

    def test_positions_translate_after_deletes(self):
        rows = [(0, 0, 0), (1, 1, 1), (2, 2, 2), (3, 3, 3)]
        index = CoverIndex(rows=rows, n_dims=N_DIMS)
        index.apply_deletes([1])
        # Surviving rows compact to positions 0, 1, 2.
        assert index.positions((ALL, ALL, ALL)) == frozenset({0, 1, 2})
        assert index.positions((3, ALL, ALL)) == frozenset({2})
        # rows() keeps stable ids; row() resolves them.
        (rid,) = index.rows((3, ALL, ALL))
        assert index.row(rid) == (3, 3, 3)

    def test_apply_deletes_validates_positions(self):
        index = CoverIndex(rows=[(0, 0, 0)], n_dims=N_DIMS)
        with pytest.raises(SchemaError):
            index.apply_deletes([1])
        with pytest.raises(SchemaError):
            index.apply_deletes([-1])
        with pytest.raises(SchemaError):
            index.apply_deletes([0, 0])
        # Failed validation must not have mutated anything.
        assert index.n_rows == 1

    def test_apply_inserts_validates_width(self):
        index = CoverIndex(rows=[(0, 0, 0)], n_dims=N_DIMS)
        with pytest.raises(SchemaError):
            index.apply_inserts([(0, 0)])
        assert index.n_rows == 1


class TestConstructorValidation:
    def test_no_arguments_is_a_clear_error(self):
        with pytest.raises(SchemaError, match="table= or an explicit"):
            CoverIndex()

    def test_n_dims_derived_from_first_row(self):
        index = CoverIndex(rows=[(0, 1), (2, 3)])
        assert index.n_dims == 2
        assert index.rows((0, ALL)) == frozenset({0})

    def test_empty_rows_without_n_dims(self):
        with pytest.raises(SchemaError, match="empty row set"):
            CoverIndex(rows=[])

    def test_empty_rows_with_n_dims_is_fine(self):
        index = CoverIndex(rows=[], n_dims=2)
        assert index.rows((ALL, ALL)) == frozenset()

    def test_inconsistent_row_widths(self):
        with pytest.raises(SchemaError, match="inconsistent row width"):
            CoverIndex(rows=[(0, 1), (0,)])
        with pytest.raises(SchemaError, match="inconsistent row width"):
            CoverIndex(rows=[(0,)], n_dims=2)

    def test_bad_n_dims(self):
        with pytest.raises(SchemaError, match="non-negative int"):
            CoverIndex(rows=[(0,)], n_dims=-1)
        with pytest.raises(SchemaError, match="non-negative int"):
            CoverIndex(rows=[(0,)], n_dims="1")


class TestCoversAnyProbe:
    def test_does_not_pollute_the_rows_cache(self):
        rows = [(v % CARD, v % 3, v % 2) for v in range(40)]
        index = CoverIndex(rows=rows, n_dims=N_DIMS)
        cell = (ALL, 0, 0)
        assert index.covers_any(cell)
        assert cell not in index._rows_cache
        assert index.covers_any((3, 2, 1))       # row 11 is (3, 2, 1)
        assert (3, 2, 1) not in index._rows_cache
        assert not index.covers_any((3, 2, 0))   # v%4==3 forces v odd
        assert (3, 2, 0) not in index._rows_cache

    def test_uses_a_cached_cover_set(self):
        index = CoverIndex(rows=[(0, 0, 0)], n_dims=N_DIMS)
        cell = (0, ALL, ALL)
        index.rows(cell)
        # Remove the posting behind the cache's back: a hit on the
        # cached set (not a posting walk) is the only way to still
        # answer True.
        index._postings[0].clear()
        assert index.covers_any(cell)

    @given(rows_strategy, st.sampled_from(CELLS))
    @settings(max_examples=150, deadline=None)
    def test_matches_rows_nonemptiness(self, rows, cell):
        if not rows:
            rows = [(0, 0, 0)]
        index = CoverIndex(rows=rows, n_dims=N_DIMS)
        assert index.covers_any(cell) == bool(index.rows(cell))


class TestUnifiedClosureCache:
    def _assert_closure_subset_of_rows(self, index):
        assert set(index._closure_cache) <= set(index._rows_cache)

    def test_closure_cache_never_outlives_rows_cache(self):
        rows = [(0, 0, 0), (0, 1, 1), (1, 1, 1)]
        index = CoverIndex(rows=rows, n_dims=N_DIMS)
        for cell in CELLS:
            index.closure(cell)
        self._assert_closure_subset_of_rows(index)
        index.apply_inserts([(0, 2, 3)])
        self._assert_closure_subset_of_rows(index)
        index.apply_deletes([0])
        self._assert_closure_subset_of_rows(index)
        # Both entries for a touched cell are gone together.
        cell = (0, ALL, ALL)
        assert cell not in index._rows_cache
        assert cell not in index._closure_cache
        # And both refill through the one helper.
        ub, cover = index.closure_and_rows(cell)
        assert cell in index._rows_cache
        assert index.closure(cell) == ub

    def test_closure_and_rows_equal_separate_calls(self):
        table = make_random_table(5, n_dims=3, cardinality=3, n_rows=10)
        index = CoverIndex(table)
        other = CoverIndex(table)
        from tests.conftest import all_cells

        for cell in all_cells(table):
            ub, cover = index.closure_and_rows(cell)
            assert ub == other.closure(cell)
            assert cover == other.rows(cell)


def _records_for(table, rows):
    return [table.decode_cell(r) + (1.0,) for r in rows]


class TestMaintenanceWithPersistentIndex:
    """maintain_batch driving one long-lived index across batches must
    produce the same tree as the rebuild-per-batch engine, and leave the
    index posting-equivalent to a fresh build of the final table."""

    @given(st.lists(step_strategy, min_size=1, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_batches_with_shared_index_match_rebuild(self, program):
        table = make_random_table(11, n_dims=N_DIMS, cardinality=CARD,
                                  n_rows=8)
        tree_a = build_qctree(table, "count")
        tree_b = tree_a.copy()
        table_a = table_b = table
        index = CoverIndex(table)
        for inserts, delete_picks, _warm in program:
            deletes = []
            if delete_picks and table_a.n_rows:
                picks = sorted({p % table_a.n_rows for p in delete_picks})
                deletes = [
                    table_a.decode_cell(table_a.rows[i])
                    + tuple(table_a.measures[i])
                    for i in picks
                ]
            records = _records_for(table_a, inserts)
            result_a = maintain_batch(tree_a, table_a, inserts=records,
                                      deletes=deletes, cover_index=index)
            result_b = maintain_batch(tree_b, table_b, inserts=records,
                                      deletes=deletes)
            table_a, table_b = result_a.table, result_b.table
            assert tree_a.signature() == tree_b.signature()
            if records or deletes:
                assert result_a.stats["cover_index"] == "patched"
        fresh = CoverIndex(table_a)
        for j in range(N_DIMS):
            assert index.postings(j) == fresh.postings(j)
        assert tree_a.signature() == build_qctree(table_a, "count").signature()

    def test_warehouse_counters_and_failure_recovery(self):
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        wh = QCWarehouse.from_records(
            [("a", "x", 1.0), ("b", "y", 2.0)], schema
        )
        wh.insert([("c", "z", 3.0)])
        wh.delete([("a", "x", 0.0)])
        stats = wh.stats()["cover_index"]
        assert stats["rebuilt"] == 1      # built once, on the first write
        assert stats["patched"] == 2      # then patched per batch
        assert stats["live_rows"] == wh.table.n_rows
        # A failing batch leaves the index suspect: it must be dropped
        # and lazily rebuilt by the next successful write.
        with pytest.raises(MaintenanceError):
            wh.delete([("nope", "nope", 0.0)])
        assert wh._cover_index is None
        wh.insert([("d", "w", 4.0)])
        stats = wh.stats()["cover_index"]
        assert stats["rebuilt"] == 2
        assert wh.point(("d", "*")) == 1

    def test_warehouse_index_stays_equivalent(self):
        schema = Schema(dimensions=("A", "B", "C"), measures=("m",))
        wh = QCWarehouse.from_records(
            [("a", "x", "p", 1.0), ("b", "y", "q", 2.0),
             ("a", "y", "p", 3.0)], schema
        )
        wh.insert([("c", "x", "q", 4.0), ("a", "x", "q", 5.0)])
        wh.delete([("b", "y", "q", 0.0)])
        wh.modify([("a", "x", "p", 1.0)], [("a", "z", "p", 9.0)])
        index = wh.cover_index
        fresh = CoverIndex(wh.table)
        for j in range(wh.table.n_dims):
            assert index.postings(j) == fresh.postings(j)

    def test_fsck_reuses_live_index(self, sales_table):
        wh = QCWarehouse(sales_table, aggregate=("sum", "Sale"))
        wh.insert([("S3", "P1", "s", 2.0)])
        assert wh._cover_index is not None
        report = wh.verify(deep=True, samples=None)
        assert report.ok, str(report)

    def test_fsck_ignores_stale_index(self, sales_table):
        tree = build_qctree(sales_table, "count")
        stale = CoverIndex(rows=[(0, 0, 0)], n_dims=3)  # wrong row count
        report = fsck_tree(tree, table=sales_table, samples=None,
                           cover_index=stale)
        assert report.ok, str(report)

    def test_recovery_replay_reuses_one_index(self, tmp_path):
        schema = Schema(dimensions=("A", "B"), measures=("m",))
        wh = QCWarehouse.from_records(
            [("a", "x", 1.0), ("b", "y", 2.0)], schema
        )
        wh.attach_wal(tmp_path / "wal.log")
        wh.save(tmp_path / "t.qct", tmp_path / "t.csv")
        wh.insert([("c", "z", 3.0)])
        wh.delete([("a", "x", 0.0)])
        wh.insert([("d", "w", 4.0), ("e", "v", 5.0)])
        recovered = QCWarehouse.recover(
            tmp_path / "t.qct", tmp_path / "wal.log", tmp_path / "t.csv",
            schema,
        )
        assert recovered.last_recovery["replayed"] == 3
        assert recovered.tree.signature() == wh.tree.signature()
        # The replay path built the index once and patched it through
        # every replayed batch; it must match a fresh build.
        assert recovered._cover_index is not None
        assert recovered.stats()["cover_index"]["rebuilt"] == 1
        fresh = CoverIndex(recovered.table)
        for j in range(recovered.table.n_dims):
            assert recovered.cover_index.postings(j) == fresh.postings(j)

    def test_empty_batch_does_not_build_an_index(self):
        schema = Schema(dimensions=("A",), measures=("m",))
        wh = QCWarehouse.from_records([("a", 1.0)], schema)
        wh.insert([])
        assert wh._cover_index is None
        assert wh.stats()["cover_index"]["rebuilt"] == 0
