"""Tests for the analysis reports and the reference construction."""

import pytest

from repro.core.analyze import (
    analyze_tree,
    class_size_distribution,
    link_dimension_histogram,
    tree_depths,
)
from repro.core.construct import build_qctree, build_qctree_reference
from repro.cube.buc import buc_cell_count
from tests.conftest import make_random_table


class TestReferenceConstruction:
    """The closure-relation construction must equal Algorithm 1 exactly —
    the two implementations validate each other."""

    @pytest.mark.parametrize("seed", range(30))
    def test_signature_equality(self, seed):
        table = make_random_table(seed)
        alg1 = build_qctree(table, ("sum", "m"))
        reference = build_qctree_reference(table, ("sum", "m"))
        assert alg1.signature()[0] == reference.signature()[0], "paths"
        assert alg1.signature()[1] == reference.signature()[1], "links"
        assert alg1.equivalent_to(reference)

    def test_paper_example(self, sales_table):
        reference = build_qctree_reference(sales_table, ("avg", "Sale"))
        assert reference.n_nodes == 11
        assert reference.n_links == 5
        assert reference.n_classes == 6

    def test_empty_table(self):
        table = make_random_table(0, n_rows=1).without_rows([0])
        tree = build_qctree_reference(table, "count")
        assert tree.n_classes == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_reference_passes_invariants(self, seed):
        build_qctree_reference(
            make_random_table(seed + 50), "count"
        ).check_invariants()


class TestAnalyze:
    @pytest.fixture(scope="class")
    def setup(self):
        table = make_random_table(3, n_dims=3, cardinality=3, n_rows=10)
        return table, build_qctree(table, "count")

    def test_tree_depths_counts_all_nodes(self, setup):
        _, tree = setup
        depths = tree_depths(tree)
        assert sum(depths.values()) == tree.n_nodes
        assert depths[0] == 1  # only the root at depth 0

    def test_link_histogram_totals(self, setup):
        _, tree = setup
        histogram = link_dimension_histogram(tree)
        assert sum(histogram.values()) == tree.n_links

    def test_class_sizes_partition_the_cube(self, setup):
        table, tree = setup
        sizes = class_size_distribution(tree, table)
        total_cells = sum(size * count for size, count in sizes.items())
        assert total_cells == buc_cell_count(table)
        assert sum(sizes.values()) == tree.n_classes

    def test_analyze_report_keys(self, setup):
        table, tree = setup
        report = analyze_tree(tree, table)
        for key in ("nodes", "links", "classes", "bytes", "cube_cells",
                    "cells_per_class_mean", "max_depth", "depth_histogram",
                    "links_per_dimension", "link_density",
                    "class_size_histogram", "cells_accounted"):
            assert key in report, key
        assert report["cells_accounted"] == report["cube_cells"]
        assert report["cells_per_class_mean"] >= 1.0

    def test_analyze_without_class_sizes(self, setup):
        table, tree = setup
        report = analyze_tree(tree, table, with_class_sizes=False)
        assert "class_size_histogram" not in report

    def test_empty_tree_report(self):
        table = make_random_table(0, n_rows=1).without_rows([0])
        tree = build_qctree(table, "count")
        report = analyze_tree(tree, table)
        assert report["classes"] == 0
        assert report["cells_per_class_mean"] == 0.0
