"""Tests for aggregate functions and their state protocol."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cube.aggregates import (
    Average,
    Count,
    Max,
    Min,
    MultiAggregate,
    Sum,
    aggregate_spec,
    make_aggregate,
    values_close,
)
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from repro.errors import MaintenanceError, SchemaError


@pytest.fixture
def table():
    schema = Schema(dimensions=("A",), measures=("m", "n"))
    return BaseTable.from_records(
        [("a", 1.0, 10.0), ("b", 2.0, 20.0), ("c", 3.0, 30.0), ("d", 4.0, 40.0)],
        schema,
    )


class TestValues:
    def test_count(self, table):
        agg = Count()
        assert agg.value(agg.state(table, [0, 1, 2])) == 3

    def test_sum(self, table):
        agg = Sum("m")
        assert agg.value(agg.state(table, [0, 3])) == 5.0

    def test_sum_second_measure(self, table):
        agg = Sum("n")
        assert agg.value(agg.state(table, [0, 3])) == 50.0

    def test_sum_by_index(self, table):
        agg = Sum(1)
        assert agg.value(agg.state(table, [0])) == 10.0

    def test_min_max(self, table):
        assert Min("m").value(Min("m").state(table, [1, 2])) == 2.0
        assert Max("m").value(Max("m").state(table, [1, 2])) == 3.0

    def test_average(self, table):
        agg = Average("m")
        assert agg.value(agg.state(table, [0, 1, 2, 3])) == 2.5

    def test_average_empty_state_is_nan(self):
        agg = Average("m")
        assert math.isnan(agg.value((0.0, 0)))

    def test_multi(self, table):
        agg = MultiAggregate([Sum("m"), Count()])
        assert agg.value(agg.state(table, [0, 1])) == (3.0, 2)


class TestMergeSubtract:
    def test_merge_matches_union(self, table):
        for agg in (Count(), Sum("m"), Min("m"), Max("m"), Average("m")):
            a = agg.state(table, [0, 1])
            b = agg.state(table, [2, 3])
            assert values_close(
                agg.value(agg.merge(a, b)),
                agg.value(agg.state(table, [0, 1, 2, 3])),
            )

    def test_subtract_inverts_merge(self, table):
        for agg in (Count(), Sum("m"), Average("m")):
            a = agg.state(table, [0, 1])
            b = agg.state(table, [2])
            assert values_close(
                agg.value(agg.subtract(agg.merge(a, b), b)), agg.value(a)
            )

    def test_min_not_subtractable(self, table):
        with pytest.raises(MaintenanceError):
            Min("m").subtract(1.0, 1.0)

    def test_max_not_subtractable(self, table):
        with pytest.raises(MaintenanceError):
            Max("m").subtract(1.0, 1.0)

    def test_count_underflow(self):
        with pytest.raises(MaintenanceError):
            Count().subtract(1, 2)

    def test_avg_underflow(self):
        with pytest.raises(MaintenanceError):
            Average("m").subtract((1.0, 1), (2.0, 2))

    def test_multi_subtractable_iff_all_parts(self):
        assert MultiAggregate([Sum("m"), Count()]).subtractable
        assert not MultiAggregate([Sum("m"), Min("m")]).subtractable

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=8),
           st.lists(st.floats(-100, 100), min_size=1, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_sum_merge_commutes(self, xs, ys):
        agg = Sum("m")
        a, b = sum(xs), sum(ys)
        assert math.isclose(agg.merge(a, b), agg.merge(b, a))


class TestRegistry:
    def test_count(self):
        assert isinstance(make_aggregate("count"), Count)

    def test_tuple_spec(self):
        agg = make_aggregate(("sum", "Sale"))
        assert isinstance(agg, Sum) and agg.measure == "Sale"

    def test_string_call_spec(self):
        agg = make_aggregate("avg(Sale)")
        assert isinstance(agg, Average) and agg.measure == "Sale"

    def test_list_spec_builds_multi(self):
        agg = make_aggregate([("sum", "m"), "count"])
        assert isinstance(agg, MultiAggregate)

    def test_passthrough(self):
        agg = Sum("m")
        assert make_aggregate(agg) is agg

    def test_unknown_tag_rejected(self):
        with pytest.raises(SchemaError):
            make_aggregate(("median", "m"))

    def test_garbage_rejected(self):
        with pytest.raises(SchemaError):
            make_aggregate(42)

    def test_empty_multi_rejected(self):
        with pytest.raises(SchemaError):
            MultiAggregate([])

    def test_spec_roundtrip(self):
        for spec in ["count", ("sum", "m"), ("min", "m"), ("max", "m"),
                     ("avg", "m"), [("sum", "m"), "count"]]:
            agg = make_aggregate(spec)
            rebuilt = make_aggregate(aggregate_spec(agg))
            assert rebuilt.name == agg.name


class TestValuesClose:
    def test_scalars(self):
        assert values_close(1.0, 1.0 + 1e-12)
        assert not values_close(1.0, 1.1)

    def test_tuples(self):
        assert values_close((1.0, 2), (1.0, 2))
        assert not values_close((1.0,), (1.0, 2))

    def test_nan(self):
        assert values_close(math.nan, math.nan)
        assert not values_close(math.nan, 0.0)
