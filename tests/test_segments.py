"""Unit tests for the segmented-ingest subsystem's moving parts.

The differential oracle (``test_segments_oracle``) proves end-to-end
answer parity; these tests pin the individual mechanisms — seal
thresholds, delete routing across segments, the generation-stamped
query cache, manifest atomicity and corruption handling, checkpoint
GC, compactor lifecycle, the serving-layer surface, and the
label-dictionary persistence fix that keeps loaded trees paired with
re-encoded tables.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

import pytest

from repro.core.warehouse import QCWarehouse
from repro.cube.aggregates import values_close
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from repro.errors import MaintenanceError, RecoveryError, SchemaError
from repro.segments import SegmentedWarehouse
from repro.segments.manifest import (
    find_orphans,
    load_manifest,
    save_manifest,
)

SCHEMA = Schema(dimensions=("A", "B", "C"), measures=("m",))


def _record(i: int, card: int = 4):
    codes = (i % card, (i // card) % card, (i // card // card) % card)
    measure = float((3 * codes[0] + 5 * codes[1] + 7 * codes[2]) % 10 + 1)
    return tuple(f"x{c}" for c in codes) + (measure,)


def _records(n: int, start: int = 0, card: int = 4):
    return [_record(i, card) for i in range(start, start + n)]


def _warehouse(n_rows=0, **options):
    options.setdefault("seal_rows", 8)
    options.setdefault("seal_batches", 4)
    options.setdefault("compact_min_segments", 2)
    return SegmentedWarehouse.from_records(
        _records(n_rows), SCHEMA, ("sum", "m"), **options
    )


class TestSealing:
    def test_bootstrap_larger_than_threshold_seals_immediately(self):
        wh = _warehouse(n_rows=30, seal_rows=8)
        health = wh.segment_health()
        assert health["segments_live"] == 1
        assert health["head_rows"] == 0
        assert health["seals"] == 1

    def test_row_threshold(self):
        wh = _warehouse(n_rows=0, seal_rows=8)
        wh.maintain(inserts=_records(5))
        assert wh.segment_health() == dict(
            wh.segment_health(), segments_live=0, head_rows=5
        )
        wh.maintain(inserts=_records(5, start=5))
        health = wh.segment_health()
        assert health["segments_live"] == 1 and health["head_rows"] == 0

    def test_batch_threshold(self):
        wh = _warehouse(n_rows=0, seal_rows=10_000, seal_batches=3)
        for i in range(3):
            wh.maintain(inserts=[_record(i)])
        health = wh.segment_health()
        assert health["segments_live"] == 1 and health["head_rows"] == 0

    def test_empty_head_never_seals(self):
        wh = _warehouse(n_rows=0)
        assert wh.seal() is None
        assert wh.segment_health()["segments_live"] == 0

    def test_explicit_seal(self):
        wh = _warehouse(n_rows=0)
        wh.maintain(inserts=_records(3))
        segment = wh.seal()
        assert segment is not None and segment.n_rows == 3
        assert wh.last_seal["rows"] == 3
        assert wh.segment_health()["head_rows"] == 0

    def test_row_order_matches_monolithic(self):
        """Segment rows ++ head rows must equal the monolithic row order
        (batches are sorted identically by both engines) — the invariant
        delete-match parity rests on."""
        wh = _warehouse(n_rows=5, seal_rows=4)
        mono = QCWarehouse.from_records(_records(5), SCHEMA, ("sum", "m"))
        wh.maintain(inserts=_records(7, start=5))
        mono.maintain(inserts=_records(7, start=5))
        flat = []
        for segment in wh._segments:
            flat.extend(segment.table.iter_records())
        flat.extend(wh.table.iter_records())
        assert flat == list(mono.table.iter_records())


class TestDeleteRouting:
    def test_delete_from_sealed_segment(self):
        wh = _warehouse(n_rows=10, seal_rows=4)
        victim = _record(2)
        before = wh.point(victim[:3])
        wh.maintain(deletes=[victim])
        assert wh.point(victim[:3]) != before
        assert wh.n_rows == 9

    def test_duplicates_spread_across_segments(self):
        """Three copies living in different segments: deleting all three
        must consume one per location, oldest first."""
        record = _record(1)
        wh = _warehouse(n_rows=0, seal_rows=2)
        for _ in range(3):
            wh.maintain(inserts=[record, _record(7)])  # seals each batch
        assert wh.segment_health()["segments_live"] == 3
        wh.maintain(deletes=[record] * 3)
        assert wh.point(record[:3]) is None
        with pytest.raises(MaintenanceError):
            wh.maintain(deletes=[record])

    def test_emptied_segment_is_dropped(self):
        wh = _warehouse(n_rows=0, seal_rows=2)
        wh.maintain(inserts=[_record(1), _record(2)])  # seals
        wh.maintain(inserts=[_record(3)])
        assert wh.segment_health()["segments_live"] == 1
        wh.maintain(deletes=[_record(1), _record(2)])
        assert wh.segment_health()["segments_live"] == 0
        assert wh.n_rows == 1

    def test_failed_batch_leaves_segments_untouched(self):
        wh = _warehouse(n_rows=10, seal_rows=4)
        generation = wh.segment_health()["generation"]
        rows = wh.n_rows
        with pytest.raises(MaintenanceError):
            wh.maintain(inserts=[_record(3)],
                        deletes=[("zz", "zz", "zz", 1.0)])
        assert wh.n_rows == rows
        assert wh.segment_health()["generation"] == generation


class TestGenerationAndCache:
    """Satellite: the query cache must re-key when the segment set
    changes, even though seal/compaction don't advance the LSN."""

    def test_seal_bumps_generation(self):
        wh = _warehouse(n_rows=0, seal_rows=4)
        g0 = wh.segment_health()["generation"]
        wh.maintain(inserts=_records(4))
        assert wh.segment_health()["generation"] > g0

    def test_compaction_bumps_generation_and_epoch(self):
        wh = _warehouse(n_rows=0, seal_rows=2, compact_min_segments=1)
        wh.maintain(inserts=_records(2))
        wh.maintain(inserts=_records(2, start=2))
        g0 = wh.segment_health()["generation"]
        _, e0 = wh.serving_stamp()
        assert wh.compact_once()
        assert wh.segment_health()["generation"] == g0 + 1
        assert wh.serving_stamp()[1] == e0 + 1

    def test_cached_answer_survives_compaction_correctly(self):
        """Regression: a pre-compaction cached answer must not be served
        for a post-compaction store under a stale key; answers must stay
        right whether the entry is re-keyed or recomputed."""
        wh = _warehouse(n_rows=0, seal_rows=2, compact_min_segments=1,
                        cache_size=32)
        wh.maintain(inserts=_records(6))
        cell = _record(1)[:3]
        spec = ("*", "*", "*")
        before_point = wh.point(cell)
        before_range = wh.range(spec)
        before_iceberg = wh.iceberg(1.0)
        wh.compact_now()
        assert values_close(wh.point(cell), before_point)
        assert wh.range(spec) == before_range
        assert sorted(wh.iceberg(1.0), key=repr) == \
            sorted(before_iceberg, key=repr)
        # ...and a genuinely different post-compaction state is not
        # masked by the old entries.
        wh.maintain(deletes=[_record(1)])
        assert not values_close(wh.point(cell), before_point)

    def test_cache_keys_include_generation(self):
        wh = _warehouse(n_rows=0, seal_rows=100, cache_size=32)
        wh.maintain(inserts=_records(4))
        wh.point(("*", "*", "*"))
        stats = wh.stats()["query_cache"]
        assert stats["size"] >= 1
        generation = wh.segment_health()["generation"]
        wh.seal()
        assert wh.segment_health()["generation"] == generation + 1
        # Same question, new generation: must be a miss, then a hit.
        misses_before = wh.stats()["query_cache"]["misses"]
        wh.point(("*", "*", "*"))
        assert wh.stats()["query_cache"]["misses"] == misses_before + 1
        hits_before = wh.stats()["query_cache"]["hits"]
        wh.point(("*", "*", "*"))
        assert wh.stats()["query_cache"]["hits"] == hits_before + 1


class TestCompactor:
    def test_compact_now_drains_backlog(self):
        wh = _warehouse(n_rows=0, seal_rows=2, compact_min_segments=2)
        for i in range(5):
            wh.maintain(inserts=_records(2, start=2 * i))
        assert wh.compaction_backlog > 0
        wh.compact_now()
        assert wh.compaction_backlog == 0
        assert wh.segment_health()["compactions"] >= 1
        assert wh.last_compaction is not None

    def test_background_compactor_lifecycle(self):
        wh = _warehouse(n_rows=0, seal_rows=2, compact_min_segments=2,
                        compact_interval=0.01)
        before = threading.active_count()
        wh.start_compactor()
        wh.start_compactor()  # idempotent
        assert threading.active_count() == before + 1
        for i in range(6):
            wh.maintain(inserts=_records(2, start=2 * i))
        deadline = time.monotonic() + 5.0
        while wh.compaction_backlog > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert wh.compaction_backlog == 0
        wh.close()
        assert threading.active_count() == before
        assert not wh.segment_health()["compactor_running"]

    def test_context_manager_joins_compactor(self):
        before = threading.active_count()
        with _warehouse(n_rows=0, compact_interval=0.01) as wh:
            wh.start_compactor()
            wh.maintain(inserts=_records(3))
        assert threading.active_count() == before

    def test_compaction_preserves_arrival_order(self):
        wh = _warehouse(n_rows=0, seal_rows=3, compact_min_segments=1)
        wh.maintain(inserts=_records(3))
        wh.maintain(inserts=_records(3, start=3))
        before = [list(s.table.iter_records()) for s in wh._segments]
        assert len(before) == 2
        assert wh.compact_once()
        assert list(wh._segments[0].table.iter_records()) == \
            before[0] + before[1]


class TestManifest:
    def _payload(self):
        return dict(
            lsn=7, generation=3, aggregate_spec="count",
            segments=[{"id": 1, "rows": 5, "tree": "segment-00000001.qct",
                       "table": "segment-00000001.csv"}],
            head={"rows": 2, "tree": "head-00000001.qct",
                  "table": "head-00000001.csv", "seq": 1},
            next_segment_id=2,
        )

    def test_round_trip(self, tmp_path):
        save_manifest(tmp_path, **self._payload())
        payload = load_manifest(tmp_path)
        assert payload["lsn"] == 7
        assert payload["segments"][0]["id"] == 1
        assert payload["head"]["seq"] == 1

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(RecoveryError, match="no segment manifest"):
            load_manifest(tmp_path)

    def test_corrupt_body_fails_checksum(self, tmp_path):
        save_manifest(tmp_path, **self._payload())
        path = tmp_path / "MANIFEST.json"
        document = json.loads(path.read_text())
        document["manifest"]["lsn"] = 99  # tamper
        path.write_text(json.dumps(document))
        with pytest.raises(RecoveryError, match="checksum mismatch"):
            load_manifest(tmp_path)

    def test_truncated_manifest(self, tmp_path):
        save_manifest(tmp_path, **self._payload())
        path = tmp_path / "MANIFEST.json"
        path.write_text(path.read_text()[:40])
        with pytest.raises(RecoveryError, match="unreadable"):
            load_manifest(tmp_path)

    def test_find_orphans(self, tmp_path):
        save_manifest(tmp_path, **self._payload())
        for name in ("segment-00000001.qct", "segment-00000001.csv",
                     "head-00000001.qct", "head-00000001.csv",
                     "segment-00000009.qct", "head-00000000.csv",
                     "unrelated.txt", "MANIFEST.json.tmp"):
            (tmp_path / name).write_text("x")
        payload = load_manifest(tmp_path)
        assert find_orphans(tmp_path, payload) == [
            "head-00000000.csv", "segment-00000009.qct"
        ]


class TestCheckpointRecover:
    def _grown(self, tmp_path, n_batches=5):
        wh = _warehouse(n_rows=6, seal_rows=4)
        wh.attach_wal(tmp_path / "wal")
        for i in range(n_batches):
            wh.maintain(inserts=_records(3, start=6 + 3 * i))
        return wh

    def test_checkpoint_truncates_wal_and_gcs(self, tmp_path):
        wh = self._grown(tmp_path)
        wh.checkpoint(tmp_path / "ckpt")
        wh.maintain(inserts=_records(2, start=50))
        wh.checkpoint(tmp_path / "ckpt")
        names = sorted(os.listdir(tmp_path / "ckpt"))
        payload = load_manifest(tmp_path / "ckpt")
        # GC: exactly the manifest's files remain (no stale head pairs).
        assert set(names) == {
            n for n in names if n == "MANIFEST.json"
        } | {e["tree"] for e in payload["segments"]} \
          | {e["table"] for e in payload["segments"]} \
          | {payload["head"]["tree"], payload["head"]["table"]}
        assert payload["head"]["seq"] == 2
        recovered = SegmentedWarehouse.recover(
            tmp_path / "ckpt", tmp_path / "wal", SCHEMA, seal_rows=4
        )
        assert recovered.last_recovery["replayed"] == 0
        assert recovered.n_rows == wh.n_rows

    def test_corrupt_segment_tree_rebuilt_from_csv(self, tmp_path):
        wh = self._grown(tmp_path)
        wh.checkpoint(tmp_path / "ckpt")
        payload = load_manifest(tmp_path / "ckpt")
        tree_file = tmp_path / "ckpt" / payload["segments"][0]["tree"]
        tree_file.write_text("garbage")
        recovered = SegmentedWarehouse.recover(
            tmp_path / "ckpt", tmp_path / "wal", SCHEMA, seal_rows=4
        )
        assert recovered.n_rows == wh.n_rows
        for cell in (("x1", "*", "*"), ("*", "x2", "*")):
            assert values_close(recovered.point(cell), wh.point(cell)) or (
                recovered.point(cell) is None and wh.point(cell) is None
            )
        report = recovered.verify(deep=True, samples=None)
        assert report.ok, report.issues

    def test_orphans_reported_not_fatal(self, tmp_path):
        wh = self._grown(tmp_path)
        wh.checkpoint(tmp_path / "ckpt")
        (tmp_path / "ckpt" / "segment-00000099.qct").write_text("junk")
        recovered = SegmentedWarehouse.recover(
            tmp_path / "ckpt", tmp_path / "wal", SCHEMA, seal_rows=4
        )
        assert recovered.last_recovery["orphans"] == [
            "segment-00000099.qct"
        ]

    def test_recovered_ids_do_not_collide(self, tmp_path):
        """Fresh seals after recovery must not reuse manifest segment
        ids (file names would silently collide at the next checkpoint)."""
        wh = self._grown(tmp_path)
        wh.checkpoint(tmp_path / "ckpt")
        taken = {s.segment_id for s in wh._segments}
        recovered = SegmentedWarehouse.recover(
            tmp_path / "ckpt", tmp_path / "wal", SCHEMA, seal_rows=2
        )
        recovered.maintain(inserts=_records(4, start=90))
        new_ids = {s.segment_id for s in recovered._segments} - taken
        assert new_ids and min(new_ids) > max(taken)


class TestLabelDictionaryPersistence:
    """Regression for the label-code drift bug: a tree whose labels were
    minted incrementally (per-batch, append-order) must stay correctly
    paired with its table across save/load, even though the CSV re-encode
    mints codes in globally-sorted order."""

    def _drifted_warehouse(self):
        # Insert labels in an order that diverges from sorted order, then
        # delete some rows so stale labels linger in the encoders.
        wh = QCWarehouse.from_records(
            [("zz", "b", "c", 1.0)], SCHEMA, ("sum", "m")
        )
        wh.maintain(inserts=[("aa", "b", "c", 2.0), ("mm", "b", "c", 3.0)])
        wh.maintain(deletes=[("zz", "b", "c", 1.0)])
        return wh

    def test_monolithic_save_load_round_trip(self, tmp_path):
        wh = self._drifted_warehouse()
        expected = {cell: wh.point(cell) for cell in
                    [("aa", "*", "*"), ("mm", "*", "*"), ("*", "b", "*")]}
        wh.save(tmp_path / "w.qct", tmp_path / "w.csv")
        loaded = QCWarehouse.load(tmp_path / "w.qct", tmp_path / "w.csv",
                                  SCHEMA)
        for cell, value in expected.items():
            assert values_close(loaded.point(cell), value), cell
        # The loaded pair must also keep *maintaining* correctly.
        loaded.maintain(deletes=[("aa", "b", "c", 2.0)])
        assert loaded.point(("aa", "*", "*")) is None
        report = loaded.verify(deep=True, samples=None)
        assert report.ok, report.issues

    def test_with_label_dictionaries_rejects_unknown_label(self):
        table = BaseTable.from_records([("a", "b", "c", 1.0)], SCHEMA)
        with pytest.raises(SchemaError):
            table.with_label_dictionaries([["z"], ["b"], ["c"]])

    def test_segment_round_trip_preserves_drifted_codes(self, tmp_path):
        wh = _warehouse(n_rows=0, seal_rows=100)
        wh.maintain(inserts=[("zz", "b", "c", 1.0)])
        wh.maintain(inserts=[("aa", "b", "c", 2.0)])
        wh.maintain(deletes=[("zz", "b", "c", 1.0)])
        wh.attach_wal(tmp_path / "wal")
        wh.seal()
        wh.checkpoint(tmp_path / "ckpt")
        recovered = SegmentedWarehouse.recover(
            tmp_path / "ckpt", tmp_path / "wal", SCHEMA
        )
        assert not recovered.last_recovery["rebuilt"]
        assert values_close(recovered.point(("aa", "*", "*")), 2.0)
        recovered.maintain(deletes=[("aa", "b", "c", 2.0)])
        assert recovered.point(("aa", "*", "*")) is None


class TestServingSurface:
    def test_snapshot_is_immutable_under_writes(self):
        wh = _warehouse(n_rows=6, seal_rows=4)
        snap = wh.snapshot_view()
        before = snap.point(("x1", "*", "*"))
        wh.maintain(inserts=_records(6, start=6))
        assert values_close(snap.point(("x1", "*", "*")), before) or (
            snap.point(("x1", "*", "*")) is None and before is None
        )
        assert snap.describe()["generation"] <= \
            wh.segment_health()["generation"]

    def test_describe_shape(self):
        wh = _warehouse(n_rows=10, seal_rows=4)
        described = wh.snapshot_view().describe()
        assert described["frozen"] is True
        assert described["n_rows"] == 10
        assert described["segments"] >= 1
        assert "head_rows" in described and "generation" in described

    def test_stats_fields(self):
        wh = _warehouse(n_rows=10, seal_rows=4)
        stats = wh.stats()
        assert stats["serving"] == "segmented"
        for key in ("segments_live", "head_rows", "head_batches", "seals",
                    "compactions", "compaction_backlog", "segment_rewrites",
                    "compactor_running", "segment_rows"):
            assert key in stats, key
        assert stats["serving_stamp"]["generation"] == \
            wh.segment_health()["generation"]

    def test_server_health_and_write_phases(self):
        from repro.serving.server import QCServer

        wh = _warehouse(n_rows=0, seal_rows=4, compact_min_segments=2,
                        compact_interval=0.01)
        wh.start_compactor()
        server = QCServer(wh, workers=2)
        try:
            for i in range(6):
                server.write(inserts=_records(2, start=2 * i))
            health = server.health()
            assert health["segments"]["seals"] >= 1
            stats = server.stats()
            assert "seal" in stats["write_phases"]
            assert stats["segments"]["segments_live"] == \
                wh.segment_health()["segments_live"]
        finally:
            server.close()
        assert not wh.segment_health()["compactor_running"]

    def test_degraded_falls_back_to_scan(self):
        wh = _warehouse(n_rows=10, seal_rows=4)
        expected = wh.point(("x1", "*", "*"))
        wh._degraded = True
        assert values_close(wh.point(("x1", "*", "*")), expected)
