"""End-to-end crash recovery: snapshot + WAL replay == fresh rebuild.

These tests simulate the crash windows the durability design must cover:

* crash at any I/O step during a checkpoint save (atomic snapshot);
* crash between the WAL append and the in-memory tree mutation;
* crash after mutation but before the next checkpoint;

and assert that ``QCWarehouse.recover`` restores a warehouse whose
point, range, and iceberg answers match a tree built from scratch on the
true final table.
"""

import pytest

from repro.core.construct import build_qctree
from repro.core.warehouse import QCWarehouse
from repro.cube.schema import Schema
from repro.reliability.faults import InjectedCrash, count_io, crash_on_io
from repro.reliability.wal import WriteAheadLog
from tests.conftest import all_cells, approx_equal


SCHEMA = Schema(dimensions=("Store", "Product", "Season"),
                measures=("Sale",))
BASE = [
    ("S1", "P1", "s", 6.0),
    ("S1", "P2", "s", 12.0),
    ("S2", "P1", "f", 9.0),
]
INSERT_1 = [("S2", "P2", "f", 4.0), ("S3", "P1", "w", 2.0)]
DELETE_1 = [("S1", "P2", "s", 0.0)]
INSERT_2 = [("S1", "P3", "w", 7.0)]


@pytest.fixture
def paths(tmp_path):
    return (str(tmp_path / "tree.qct"), str(tmp_path / "wh.wal"),
            str(tmp_path / "table.csv"))


def fresh_warehouse(paths, aggregate=("avg", "Sale")):
    """A checkpointed warehouse with an attached WAL."""
    tree_path, wal_path, table_path = paths
    wh = QCWarehouse.from_records(BASE, SCHEMA, aggregate=aggregate)
    wh.attach_wal(wal_path)
    wh.checkpoint(tree_path, table_path)
    return wh


def assert_equivalent_answers(recovered, reference_wh):
    """Point/range/iceberg equality against a from-scratch warehouse."""
    table = reference_wh.table
    for cell in all_cells(table):
        raw = table.decode_cell(cell)
        assert approx_equal(recovered.point(raw), reference_wh.point(raw))
    spec = (["S1", "S2", "S3"], "*", "*")
    got, want = recovered.range(spec), reference_wh.range(spec)
    assert got.keys() == want.keys()
    assert all(approx_equal(got[c], want[c]) for c in want)
    got_ice = sorted(recovered.iceberg(5))
    want_ice = sorted(reference_wh.iceberg(5))
    assert [ub for ub, _ in got_ice] == [ub for ub, _ in want_ice]
    assert all(approx_equal(gv, wv) for (_, gv), (_, wv)
               in zip(got_ice, want_ice))
    assert recovered.tree.equivalent_to(
        build_qctree(reference_wh.table, reference_wh.aggregate))


def reference_after(batches, aggregate=("avg", "Sale")):
    """A warehouse built fresh by applying ``batches`` to the base data."""
    wh = QCWarehouse.from_records(BASE, SCHEMA, aggregate=aggregate)
    for op, records in batches:
        getattr(wh, op)(records)
    # Rebuild from the final table so the reference is maintenance-free.
    return QCWarehouse(wh.table, aggregate=aggregate)


class TestRecoverReplaysBatches:
    def test_recover_after_unclean_shutdown(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        wh.insert(INSERT_1)
        wh.delete(DELETE_1)
        wh.insert(INSERT_2)
        del wh  # crash: no checkpoint after the three batches

        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        assert recovered.last_recovery["replayed"] == 3
        assert recovered.last_recovery["skipped"] == []
        reference = reference_after(
            [("insert", INSERT_1), ("delete", DELETE_1),
             ("insert", INSERT_2)])
        assert_equivalent_answers(recovered, reference)

    def test_recover_with_no_pending_batches(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        wh.insert(INSERT_1)
        wh.checkpoint(tree_path, table_path)
        del wh

        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        assert recovered.last_recovery["replayed"] == 0
        reference = reference_after([("insert", INSERT_1)])
        assert_equivalent_answers(recovered, reference)

    def test_recovered_warehouse_keeps_logging(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        wh.insert(INSERT_1)
        del wh

        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        recovered.insert(INSERT_2)
        del recovered  # crash again before any checkpoint

        twice = QCWarehouse.recover(tree_path, wal_path, table_path, SCHEMA)
        assert twice.last_recovery["replayed"] == 2
        reference = reference_after(
            [("insert", INSERT_1), ("insert", INSERT_2)])
        assert_equivalent_answers(twice, reference)

    def test_failed_batch_is_skipped_not_wedged(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        from repro.errors import MaintenanceError

        with pytest.raises(MaintenanceError):
            wh.delete([("S9", "P9", "x", 0.0)])  # logged, then refused
        wh.insert(INSERT_1)
        del wh

        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        assert recovered.last_recovery["replayed"] == 1
        assert len(recovered.last_recovery["skipped"]) == 1
        reference = reference_after([("insert", INSERT_1)])
        assert_equivalent_answers(recovered, reference)


class TestCrashWindows:
    def test_crash_between_wal_append_and_mutation(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        # The append committed but the process died before the tree (or
        # any later state) changed — exactly what WAL-before-mutate
        # protects.
        wh.wal.append("insert", INSERT_1)
        del wh

        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        assert recovered.last_recovery["replayed"] == 1
        reference = reference_after([("insert", INSERT_1)])
        assert_equivalent_answers(recovered, reference)

    def test_crash_mid_wal_append_drops_uncommitted_batch(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        wh.insert(INSERT_1)

        log_bytes = open(wal_path, "rb").read()
        total = count_io(
            lambda: WriteAheadLog(wal_path).append("insert", INSERT_2),
        )
        with open(wal_path, "wb") as fp:  # undo the counting run's append
            fp.write(log_bytes)

        for fail_after in range(total):
            w = WriteAheadLog(wal_path)
            with crash_on_io(fail_after):
                with pytest.raises(InjectedCrash):
                    w.append("insert", INSERT_2)
            recovered = QCWarehouse.recover(
                tree_path, wal_path, table_path, SCHEMA)
            # Either the batch committed (replayed) or it did not
            # (dropped); both recover to a consistent warehouse.
            expect = [("insert", INSERT_1)]
            if recovered.last_recovery["replayed"] == 2:
                expect.append(("insert", INSERT_2))
            assert_equivalent_answers(recovered, reference_after(expect))
            with open(wal_path, "wb") as fp:
                fp.write(log_bytes)

    def test_crash_at_every_io_step_of_checkpoint(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        wh.insert(INSERT_1)
        wh.delete(DELETE_1)
        reference = reference_after(
            [("insert", INSERT_1), ("delete", DELETE_1)])

        snapshot_state = {
            p: open(p, "rb").read() for p in (tree_path, wal_path, table_path)
        }

        def restore_disk():
            for p, data in snapshot_state.items():
                with open(p, "wb") as fp:
                    fp.write(data)

        total = count_io(lambda: wh.checkpoint(tree_path, table_path))
        restore_disk()
        for fail_after in range(total):
            with crash_on_io(fail_after):
                with pytest.raises(InjectedCrash):
                    wh.checkpoint(tree_path, table_path)
            recovered = QCWarehouse.recover(
                tree_path, wal_path, table_path, SCHEMA)
            assert_equivalent_answers(recovered, reference)
            restore_disk()

    def test_torn_snapshot_is_rejected_loudly(self, paths):
        from repro.errors import SerializationError
        from repro.reliability.faults import torn_write

        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        wh.insert(INSERT_1)
        wh.checkpoint(tree_path, table_path)
        torn_write(tree_path, keep_fraction=0.6)
        with pytest.raises(SerializationError, match="tree.qct"):
            QCWarehouse.recover(tree_path, wal_path, table_path, SCHEMA)


class TestCheckpointTruncatesWal:
    def test_log_empty_after_checkpoint(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths)
        wh.insert(INSERT_1)
        assert len(WriteAheadLog(wal_path)) == 1
        wh.checkpoint(tree_path, table_path)
        assert len(WriteAheadLog(wal_path)) == 0

    def test_count_aggregate_roundtrip(self, paths):
        tree_path, wal_path, table_path = paths
        wh = fresh_warehouse(paths, aggregate="count")
        wh.insert(INSERT_1)
        del wh
        recovered = QCWarehouse.recover(tree_path, wal_path, table_path,
                                        SCHEMA)
        reference = reference_after([("insert", INSERT_1)],
                                    aggregate="count")
        assert_equivalent_answers(recovered, reference)
