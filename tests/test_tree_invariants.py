"""Structural invariant checks for QC-trees across their whole lifecycle.

``QCTree.check_invariants`` is run after construction, after random
mixes of insert/delete batches, and after serialization round trips —
plus failure-injection tests confirming it catches corruption.
"""

import random

import pytest

from repro.core.construct import build_qctree
from repro.core.maintenance.delete import apply_deletions
from repro.core.maintenance.insert import apply_insertions
from repro.core.serialize import dumps_qctree, loads_qctree
from tests.conftest import make_random_table


class TestLifecycle:
    @pytest.mark.parametrize("seed", range(10))
    def test_after_construction(self, seed):
        build_qctree(make_random_table(seed), "count").check_invariants()

    @pytest.mark.parametrize("seed", range(10))
    def test_after_mixed_maintenance(self, seed):
        rng = random.Random(seed)
        table = make_random_table(seed)
        tree = build_qctree(table, ("sum", "m"))
        for _ in range(4):
            if rng.random() < 0.5 and table.n_rows > 1:
                victims = rng.sample(
                    list(table.iter_records()), rng.randint(1, table.n_rows // 2 + 1)
                )
                table = apply_deletions(tree, table, victims)
            else:
                delta = [
                    tuple(rng.randrange(4) for _ in range(table.n_dims))
                    + (float(rng.randint(0, 9)),)
                    for _ in range(rng.randint(1, 4))
                ]
                table = apply_insertions(tree, table, delta)
            tree.check_invariants()
        rebuilt = build_qctree(table, ("sum", "m"))
        assert tree.equivalent_to(rebuilt)

    @pytest.mark.parametrize("seed", range(5))
    def test_after_serialize_roundtrip(self, seed):
        tree = build_qctree(make_random_table(seed), "count")
        loads_qctree(dumps_qctree(tree)).check_invariants()

    def test_copy_shares_nothing_structural(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        clone = tree.copy()
        clone.check_invariants()
        # Mutating the clone leaves the original untouched.
        node = next(clone.iter_class_nodes())
        clone.set_state(node, (999.0, 1))
        assert not tree.equivalent_to(clone)
        rebuilt = build_qctree(sales_table, ("avg", "Sale"))
        assert tree.equivalent_to(rebuilt)


class TestFailureInjection:
    def test_detects_dangling_link(self, sales_table):
        tree = build_qctree(sales_table, "count")
        node = next(tree.iter_class_nodes())
        tree.links[node].setdefault(2, {})[99] = 10_000  # junk target
        with pytest.raises((AssertionError, IndexError)):
            tree.check_invariants()

    def test_detects_wrong_child_label(self, sales_table):
        tree = build_qctree(sales_table, "count")
        # Corrupt one child's recorded value.
        for node in tree.iter_nodes():
            if tree.children[node]:
                dim = next(iter(tree.children[node]))
                value, child = next(iter(tree.children[node][dim].items()))
                tree.node_value[child] = value + 1000
                break
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_detects_link_shadowing_edge(self, sales_table):
        tree = build_qctree(sales_table, "count")
        # Force a link that duplicates an existing tree edge.
        root = tree.root
        dim = next(iter(tree.children[root]))
        value, child = next(iter(tree.children[root][dim].items()))
        tree.links[root].setdefault(dim, {})[value] = child
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_detects_decreasing_dimension(self, sales_table):
        tree = build_qctree(sales_table, "count")
        for node in tree.iter_nodes():
            if node != tree.root and tree.children[node]:
                tree.node_dim[node] = tree.n_dims + 5
                break
        with pytest.raises(AssertionError):
            tree.check_invariants()


class TestWarehouseModify:
    def test_modify_replays_delete_then_insert(self, sales_table):
        from repro.core.warehouse import QCWarehouse

        wh = QCWarehouse(sales_table, aggregate=("avg", "Sale"))
        wh.modify([("S2", "P1", "f", 9.0)], [("S2", "P1", "f", 15.0)])
        assert wh.point(("S2", "P1", "f")) == 15.0
        rebuilt = build_qctree(wh.table, wh.aggregate)
        assert wh.tree.equivalent_to(rebuilt)
