"""Tests for the dictionary-encoded base table (repro.cube.table)."""

import pytest

from repro.core.cells import ALL
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return Schema(dimensions=("A", "B"), measures=("m",))


@pytest.fixture
def table(schema):
    return BaseTable.from_records(
        [("x", "p", 1.0), ("y", "q", 2.0), ("x", "q", 3.0)], schema
    )


class TestFromRecords:
    def test_shape(self, table):
        assert table.n_rows == 3
        assert table.n_dims == 2
        assert len(table) == 3

    def test_encoding_is_sorted_by_label(self, table):
        # labels p < q; x < y
        assert table.encode_value(0, "x") == 0
        assert table.encode_value(0, "y") == 1
        assert table.encode_value(1, "p") == 0
        assert table.encode_value(1, "q") == 1

    def test_encoding_stable_under_permutation(self, schema):
        records = [("x", "p", 1.0), ("y", "q", 2.0), ("x", "q", 3.0)]
        t1 = BaseTable.from_records(records, schema)
        t2 = BaseTable.from_records(list(reversed(records)), schema)
        assert sorted(t1.rows) == sorted(t2.rows)
        assert t1._decoders == t2._decoders

    def test_duplicates_preserved(self, schema):
        t = BaseTable.from_records([("x", "p", 1.0)] * 3, schema)
        assert t.n_rows == 3

    def test_wrong_width_rejected(self, schema):
        with pytest.raises(SchemaError):
            BaseTable.from_records([("x", "p")], schema)

    def test_measures_matrix(self, table):
        assert table.measures.shape == (3, 1)
        assert table.measures[2, 0] == 3.0


class TestFromEncoded:
    def test_roundtrip(self, schema):
        t = BaseTable.from_encoded([(0, 1), (2, 0)], [[1.0], [2.0]], schema)
        assert t.rows == [(0, 1), (2, 0)]
        assert t.cardinalities() == (3, 2)

    def test_explicit_cardinalities(self, schema):
        t = BaseTable.from_encoded([(0, 0)], [[1.0]], schema,
                                   cardinalities=[10, 5])
        assert t.cardinalities() == (10, 5)

    def test_empty(self, schema):
        t = BaseTable.from_encoded([], [], schema, cardinalities=[2, 2])
        assert t.n_rows == 0

    def test_wrong_width_rejected(self, schema):
        with pytest.raises(SchemaError):
            BaseTable.from_encoded([(0,)], [[1.0]], schema)


class TestEncodingApi:
    def test_encode_cell_with_stars(self, table):
        assert table.encode_cell(("x", "*", )) == (0, ALL)
        assert table.encode_cell((None, "q")) == (ALL, 1)
        assert table.encode_cell((ALL, "q")) == (ALL, 1)

    def test_encode_cell_unknown_label(self, table):
        with pytest.raises(SchemaError):
            table.encode_cell(("z", "*"))

    def test_encode_cell_wrong_arity(self, table):
        with pytest.raises(SchemaError):
            table.encode_cell(("x",))

    def test_decode_cell(self, table):
        assert table.decode_cell((0, ALL)) == ("x", "*")

    def test_iter_records(self, table):
        records = list(table.iter_records())
        assert records[0][:2] == ("x", "p")
        assert records[0][2] == 1.0


class TestSelect:
    def test_select_all(self, table):
        assert table.select((ALL, ALL)) == [0, 1, 2]

    def test_select_value(self, table):
        assert table.select((0, ALL)) == [0, 2]

    def test_select_empty(self, table):
        assert table.select((1, 0)) == []


class TestDerivation:
    def test_extended_appends_fresh_codes(self, table):
        new, delta = table.extended([("z", "p", 4.0)])
        assert new.n_rows == 4
        assert new.encode_value(0, "x") == 0  # old codes preserved
        assert new.encode_value(0, "z") == 2  # fresh code appended
        assert delta.n_rows == 1
        assert delta.rows[0] == (2, 0)

    def test_extended_empty(self, table):
        new, delta = table.extended([])
        assert new.n_rows == 3 and delta.n_rows == 0

    def test_extended_wrong_width(self, table):
        with pytest.raises(SchemaError):
            table.extended([("z", "p")])

    def test_without_rows(self, table):
        t = table.without_rows([1])
        assert t.n_rows == 2
        assert t.rows == [table.rows[0], table.rows[2]]
        assert list(t.measures[:, 0]) == [1.0, 3.0]

    def test_without_rows_out_of_range(self, table):
        with pytest.raises(SchemaError):
            table.without_rows([99])

    def test_subset(self, table):
        t = table.subset([2, 0])
        assert t.rows == [table.rows[2], table.rows[0]]

    def test_projected(self, table):
        t = table.projected(("B",))
        assert t.n_dims == 1
        assert t.schema.dimension_names == ("B",)
        assert t.n_rows == 3

    def test_reordered(self, table):
        t = table.reordered(("B", "A"))
        assert t.schema.dimension_names == ("B", "A")
        decoded = {tuple(r[:2]) for r in t.iter_records()}
        assert decoded == {("p", "x"), ("q", "y"), ("q", "x")}


class TestCsv:
    def test_roundtrip(self, table, schema, tmp_path):
        path = tmp_path / "t.csv"
        table.to_csv(path)
        loaded = BaseTable.from_csv(path, schema)
        assert loaded.n_rows == table.n_rows
        assert sorted(tuple(r[:2]) for r in loaded.iter_records()) == sorted(
            tuple(r[:2]) for r in table.iter_records()
        )

    def test_header_mismatch_rejected(self, table, tmp_path):
        path = tmp_path / "t.csv"
        table.to_csv(path)
        other = Schema(dimensions=("X", "Y"), measures=("m",))
        with pytest.raises(SchemaError):
            BaseTable.from_csv(path, other)
