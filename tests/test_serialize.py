"""Tests for QC-tree persistence, including corruption handling."""

import json

import pytest

from repro.core.construct import build_qctree
from repro.core.point_query import point_query
from repro.core.serialize import (
    dumps_qctree,
    load_qctree_from,
    loads_qctree,
    save_qctree,
)
from repro.errors import SerializationError
from tests.conftest import all_cells, approx_equal, make_random_table


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(10))
    def test_structure_preserved(self, seed):
        tree = build_qctree(make_random_table(seed), ("sum", "m"))
        clone = loads_qctree(dumps_qctree(tree))
        assert clone.signature() == tree.signature()
        assert clone.equivalent_to(tree)

    @pytest.mark.parametrize("seed", range(5))
    def test_queries_survive_roundtrip(self, seed):
        table = make_random_table(seed)
        tree = build_qctree(table, ("sum", "m"))
        clone = loads_qctree(dumps_qctree(tree))
        for cell in all_cells(table):
            assert approx_equal(point_query(tree, cell),
                                point_query(clone, cell))

    def test_metadata_preserved(self, sales_table):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        clone = loads_qctree(dumps_qctree(tree))
        assert clone.n_dims == 3
        assert clone.dim_names == ("Store", "Product", "Season")
        assert clone.aggregate.name == "avg(Sale)"

    def test_multi_aggregate_roundtrip(self, sales_table):
        tree = build_qctree(sales_table, [("sum", "Sale"), "count"])
        clone = loads_qctree(dumps_qctree(tree))
        assert clone.equivalent_to(tree)
        assert clone.aggregate.name == tree.aggregate.name

    def test_file_roundtrip(self, sales_table, tmp_path):
        tree = build_qctree(sales_table, ("avg", "Sale"))
        path = tmp_path / "tree.qct"
        save_qctree(tree, path)
        assert load_qctree_from(path).equivalent_to(tree)

    def test_empty_tree_roundtrip(self):
        table = make_random_table(0, n_rows=1).without_rows([0])
        tree = build_qctree(table, "count")
        clone = loads_qctree(dumps_qctree(tree))
        assert clone.n_classes == 0 and clone.n_nodes == 1

    def test_pruned_slots_compacted(self, sales_table):
        from repro.core.maintenance.insert import apply_insertions
        from repro.core.maintenance.delete import apply_deletions

        tree = build_qctree(sales_table, ("avg", "Sale"))
        bigger = apply_insertions(tree, sales_table,
                                  [("S3", "P3", "w", 1.0)])
        apply_deletions(tree, bigger, [("S3", "P3", "w", 0.0)])
        clone = loads_qctree(dumps_qctree(tree))
        assert clone.equivalent_to(tree)
        assert len(clone.node_dim) == clone.n_nodes  # no freed slots on disk


class TestFailureInjection:
    def test_bad_magic(self):
        with pytest.raises(SerializationError):
            loads_qctree("NOTATREE\n{}")

    def test_truncated_payload(self, sales_table):
        text = dumps_qctree(build_qctree(sales_table, "count"))
        with pytest.raises(SerializationError):
            loads_qctree(text[: len(text) // 2])

    def test_malformed_json(self):
        with pytest.raises(SerializationError):
            loads_qctree("QCTREE/1\n{not json")

    def test_missing_keys(self):
        with pytest.raises(SerializationError):
            loads_qctree("QCTREE/1\n" + json.dumps({"n_dims": 2}))

    def test_empty_node_table(self):
        doc = {"n_dims": 2, "dim_names": ["A", "B"], "aggregate": "count",
               "nodes": [], "links": []}
        with pytest.raises(SerializationError):
            loads_qctree("QCTREE/1\n" + json.dumps(doc))

    def test_first_node_not_root(self):
        doc = {"n_dims": 2, "dim_names": ["A", "B"], "aggregate": "count",
               "nodes": [[0, 3, -1, None]], "links": []}
        with pytest.raises(SerializationError):
            loads_qctree("QCTREE/1\n" + json.dumps(doc))

    def test_dangling_parent(self):
        doc = {"n_dims": 2, "dim_names": ["A", "B"], "aggregate": "count",
               "nodes": [[-1, None, -1, None], [0, 1, 7, 1]], "links": []}
        with pytest.raises(SerializationError):
            loads_qctree("QCTREE/1\n" + json.dumps(doc))

    def test_dangling_link(self, sales_table):
        text = dumps_qctree(build_qctree(sales_table, "count"))
        magic, payload = text.split("\n", 1)
        doc = json.loads(payload)
        doc["links"].append([0, 1, 1, 99_999])
        with pytest.raises(SerializationError):
            loads_qctree(magic + "\n" + json.dumps(doc))

    def test_unknown_aggregate_spec(self):
        doc = {"n_dims": 1, "dim_names": ["A"], "aggregate": "median(x)",
               "nodes": [[-1, None, -1, None]], "links": []}
        with pytest.raises(SerializationError):
            loads_qctree("QCTREE/1\n" + json.dumps(doc))


class TestFuzzing:
    """Random corruption must raise SerializationError, never crash oddly."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_byte_flips(self, sales_table, seed):
        import random

        from repro.core.construct import build_qctree as _build

        rng = random.Random(seed)
        text = dumps_qctree(_build(sales_table, ("avg", "Sale")))
        chars = list(text)
        for _ in range(rng.randint(1, 6)):
            pos = rng.randrange(len(chars))
            chars[pos] = rng.choice('{}[]",:0123456789abcx')
        mutated = "".join(chars)
        try:
            tree = loads_qctree(mutated)
        except SerializationError:
            return  # the expected rejection path
        # Rare lucky mutations still parse; the tree must then be usable.
        tree.stats()

