"""Shared fixtures and helpers for the QC-tree reproduction test suite."""

from __future__ import annotations

import os
import random
from itertools import product

import pytest
from hypothesis import settings

from repro.core.cells import ALL
from repro.cube.schema import Schema
from repro.cube.table import BaseTable

# Hypothesis profiles: "ci" is fully seeded (derandomized) so every CI
# run across every Python version explores the same example corpus —
# a red oracle on one matrix leg reproduces on all of them and locally
# via HYPOTHESIS_PROFILE=ci.
settings.register_profile("ci", derandomize=True, max_examples=60,
                          deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def sales_schema():
    """The paper's running example schema (Figure 1)."""
    return Schema(dimensions=("Store", "Product", "Season"), measures=("Sale",))


@pytest.fixture
def sales_table(sales_schema):
    """The paper's base table (Figure 1)."""
    return BaseTable.from_records(
        [
            ("S1", "P1", "s", 6.0),
            ("S1", "P2", "s", 12.0),
            ("S2", "P1", "f", 9.0),
        ],
        sales_schema,
    )


@pytest.fixture
def extended_sales_table(sales_schema):
    """The five-tuple table of the paper's deletion example (Example 4)."""
    return BaseTable.from_records(
        [
            ("S1", "P1", "s", 6.0),
            ("S1", "P2", "s", 12.0),
            ("S2", "P1", "f", 9.0),
            ("S2", "P2", "f", 4.0),
            ("S2", "P3", "f", 1.0),
        ],
        sales_schema,
    )


def make_random_table(seed, n_dims=None, cardinality=None, n_rows=None):
    """A small random encoded table for oracle-based comparisons."""
    rng = random.Random(seed)
    n_dims = n_dims if n_dims is not None else rng.randint(1, 4)
    cardinality = cardinality if cardinality is not None else rng.randint(1, 4)
    n_rows = n_rows if n_rows is not None else rng.randint(1, 12)
    schema = Schema(
        dimensions=[f"D{j}" for j in range(n_dims)], measures=("m",)
    )
    rows = [
        tuple(rng.randrange(cardinality) for _ in range(n_dims))
        for _ in range(n_rows)
    ]
    measures = [[float(rng.randint(0, 20))] for _ in range(n_rows)]
    return BaseTable.from_encoded(
        rows, measures, schema, cardinalities=[cardinality] * n_dims
    )


def all_cells(table):
    """Every cell of the cube lattice over the table's domains (small only)."""
    domains = [
        [ALL] + list(range(table.cardinality(j))) for j in range(table.n_dims)
    ]
    return product(*domains)


def approx_equal(a, b, tol=1e-9):
    """None-aware tolerant comparison of aggregate values."""
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            approx_equal(x, y, tol) for x, y in zip(a, b)
        )
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))
