"""Tests for the frozen read-optimized QC-tree representation.

The frozen view must be *observationally identical* to the dict-backed
tree it compiles from: same signature, same answers and node-access
counts for every query kind, same protocol surface — only faster.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cells import ALL
from repro.core.construct import build_qctree
from repro.core.frozen import FrozenQCTree
from repro.core.iceberg import MeasureIndex, constrained_iceberg, pure_iceberg
from repro.core.point_query import locate, locate_generic, point_query
from repro.core.qctree import tree_signature
from repro.core.range_query import range_query
from repro.core.serialize import dumps_qctree, loads_qctree
from repro.errors import QueryError
from tests.conftest import all_cells, approx_equal, make_random_table


def _tree_pair(seed, aggregate=("sum", "m"), **kwargs):
    table = make_random_table(seed, **kwargs)
    tree = build_qctree(table, aggregate)
    return table, tree, tree.freeze()


class TestStructure:
    @pytest.mark.parametrize("seed", range(20))
    def test_signature_matches_dict_tree(self, seed):
        _, tree, frozen = _tree_pair(seed)
        assert frozen.signature() == tree.signature()
        assert tree_signature(frozen) == tree_signature(tree)

    @pytest.mark.parametrize("seed", range(10))
    def test_counts_match(self, seed):
        _, tree, frozen = _tree_pair(seed)
        assert frozen.n_nodes == tree.n_nodes
        assert frozen.n_links == tree.n_links
        assert frozen.n_classes == tree.n_classes

    def test_immutable(self):
        _, _, frozen = _tree_pair(0)
        with pytest.raises(TypeError):
            frozen.root = 5
        with pytest.raises(TypeError):
            del frozen.root
        with pytest.raises(TypeError):
            frozen.brand_new_attribute = 1

    def test_direct_construction_rejected(self):
        with pytest.raises(TypeError):
            FrozenQCTree()

    def test_equivalent_to_both_directions(self):
        _, tree, frozen = _tree_pair(4)
        assert frozen.equivalent_to(tree)
        assert tree.equivalent_to(frozen)

    def test_class_upper_bounds_match(self):
        _, tree, frozen = _tree_pair(5)
        assert frozen.class_upper_bounds() == tree.class_upper_bounds()


class TestPointParity:
    @pytest.mark.parametrize("seed", range(25))
    def test_every_cell_and_every_count(self, seed):
        """Answers AND node-access counts agree across the four walks:
        {dict, frozen} x {generic protocol, representation fast path}."""
        table, tree, frozen = _tree_pair(seed)
        for cell in all_cells(table):
            counters = [[0] for _ in range(4)]
            answers = [
                locate(tree, cell, counter=counters[0]),
                locate_generic(tree, cell, counter=counters[1]),
                locate(frozen, cell, counter=counters[2]),
                locate_generic(frozen, cell, counter=counters[3]),
            ]
            bounds = {
                None if node is None else t.upper_bound_of(node)
                for node, t in zip(
                    answers, (tree, tree, frozen, frozen)
                )
            }
            assert len(bounds) == 1, (cell, answers)
            assert len({c[0] for c in counters}) == 1, (cell, counters)
            assert approx_equal(
                point_query(tree, cell), point_query(frozen, cell)
            )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_workloads(self, seed):
        table, tree, frozen = _tree_pair(
            seed, aggregate="count", n_dims=3, cardinality=3, n_rows=8
        )
        for cell in all_cells(table):
            assert point_query(tree, cell) == point_query(frozen, cell)

    def test_odd_query_value_types(self):
        """The int-key compression must not change lookup semantics for
        non-int values: a float equal to a code matches (dict semantics),
        anything else misses without raising."""
        table, tree, frozen = _tree_pair(7, n_dims=2, cardinality=4,
                                         n_rows=10)
        probes = [3.0, 3.5, -1, 10**9, "x", True, None]
        for probe in probes:
            for other in (ALL, 0):
                cell = (probe, other)
                assert point_query(tree, cell) == point_query(frozen, cell), (
                    cell
                )

    def test_wrong_arity_rejected(self):
        _, _, frozen = _tree_pair(3, n_dims=3)
        with pytest.raises(QueryError):
            point_query(frozen, (ALL,))


class TestRangeAndIcebergParity:
    @pytest.mark.parametrize("seed", range(15))
    def test_range_queries_match(self, seed):
        table, tree, frozen = _tree_pair(seed + 100)
        rng = random.Random(seed)
        for _ in range(5):
            spec = []
            for j in range(table.n_dims):
                roll = rng.random()
                cj = table.cardinality(j)
                if roll < 0.3:
                    spec.append(ALL)
                else:
                    spec.append(
                        sorted(rng.sample(range(cj), min(cj, rng.randint(1, 3))))
                    )
            expected = range_query(tree, spec)
            got = range_query(frozen, spec)
            assert set(got) == set(expected)
            for cell in got:
                assert approx_equal(got[cell], expected[cell])

    @pytest.mark.parametrize("seed", range(10))
    def test_pure_iceberg_matches(self, seed):
        _, tree, frozen = _tree_pair(seed + 200)
        for threshold in (0, 5, 20):
            assert pure_iceberg(frozen, threshold) == pure_iceberg(
                tree, threshold
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_constrained_iceberg_mark_and_filter(self, seed):
        """Both iceberg strategies on the frozen tree equal the dict
        tree's filter plan — 'mark' exercises the protocol iterators
        (``iter_children_of``/``iter_links_of``) over the packed arrays."""
        table, tree, frozen = _tree_pair(seed + 300)
        spec = tuple(
            [0] if j == 0 and table.cardinality(0) else ALL
            for j in range(table.n_dims)
        )
        expected = constrained_iceberg(tree, spec, 5, strategy="filter")
        for strategy in ("filter", "mark"):
            index = (
                MeasureIndex(frozen) if strategy == "mark" else None
            )
            got = constrained_iceberg(
                frozen, spec, 5, strategy=strategy, index=index
            )
            assert got == expected


class TestFreezeOnLoad:
    def test_loads_with_freeze_returns_frozen(self):
        _, tree, _ = _tree_pair(11)
        text = dumps_qctree(tree, meta={"wal_lsn": 3})
        loaded = loads_qctree(text, freeze=True)
        assert isinstance(loaded, FrozenQCTree)
        assert loaded.signature() == tree.signature()
        assert loaded.snapshot_meta == {"wal_lsn": 3}

    def test_loads_default_stays_mutable(self):
        _, tree, _ = _tree_pair(11)
        loaded = loads_qctree(dumps_qctree(tree))
        assert not isinstance(loaded, FrozenQCTree)
        assert loaded.signature() == tree.signature()
