"""Property tests for the open-loop arrival scheduler and its
coordinated-omission guard.

The :class:`~repro.serving.arrivals.ArrivalSchedule` is the part of the
benchmark harness whose correctness the BENCH numbers rest on: its send
instants must have the right statistics (mean inter-arrival ``1/rate``),
be reproducible per seed, and — the coordinated-omission guard — be
completely independent of how the server behaves.  The harness-level
tests then assert the consequence: with an injected server stall, the
generator keeps sending on schedule and the stall shows up *in the
recorded latencies*, which is exactly what a closed-loop driver hides
(the open ≥ closed p99 regression at the bottom).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.warehouse import QCWarehouse
from repro.errors import ServingError
from repro.reliability.faults import ServingFaults
from repro.serving import (
    ArrivalSchedule,
    AsyncServerThread,
    QCServer,
    latency_summary,
    run_closed_loop,
    run_open_loop,
    run_open_loop_tcp,
)
from repro.serving.workload import point_requests

from .conftest import make_random_table


# -- schedule statistics -----------------------------------------------------


def test_poisson_mean_interarrival_matches_rate():
    rate = 250.0
    schedule = ArrivalSchedule(rate, 4000, kind="poisson", seed=11)
    gaps = schedule.interarrivals()
    mean = sum(gaps) / len(gaps)
    # Mean of n exponentials concentrates as 1/rate ± a few std errors
    # (std error = 1/(rate * sqrt(n)) ≈ 0.063 ms here; allow 5).
    assert abs(mean - 1.0 / rate) < 5 / (rate * len(gaps) ** 0.5)
    assert all(g >= 0.0 for g in gaps)


def test_poisson_reproducible_per_seed_and_distinct_across_seeds():
    a = ArrivalSchedule(100.0, 200, kind="poisson", seed=3)
    b = ArrivalSchedule(100.0, 200, kind="poisson", seed=3)
    c = ArrivalSchedule(100.0, 200, kind="poisson", seed=4)
    assert a.offsets() == b.offsets()
    assert a.interarrivals() == b.interarrivals()
    assert a.offsets() != c.offsets()


def test_uniform_schedule_is_constant_gaps():
    schedule = ArrivalSchedule(1000.0, 5, kind="uniform", seed=99)
    assert schedule.interarrivals() == (0.001,) * 5
    offsets = schedule.offsets()
    assert offsets == pytest.approx((0.001, 0.002, 0.003, 0.004, 0.005))


def test_offsets_are_cumulative_and_increasing():
    schedule = ArrivalSchedule(500.0, 300, kind="poisson", seed=7)
    offsets = schedule.offsets()
    gaps = schedule.interarrivals()
    assert len(offsets) == len(gaps) == 300
    running = 0.0
    for offset, gap in zip(offsets, gaps):
        running += gap
        assert offset == pytest.approx(running)
    assert all(b >= a for a, b in zip(offsets, offsets[1:]))


def test_schedule_validation():
    with pytest.raises(ServingError):
        ArrivalSchedule(0.0, 10)
    with pytest.raises(ServingError):
        ArrivalSchedule(100.0, 0)
    with pytest.raises(ServingError):
        ArrivalSchedule(100.0, 10, kind="bursty")


def test_describe_reports_fixed_duration():
    schedule = ArrivalSchedule(200.0, 100, kind="uniform", seed=0)
    desc = schedule.describe()
    assert desc["kind"] == "uniform"
    assert desc["rate_hz"] == 200.0
    assert desc["n"] == 100
    assert desc["duration_s"] == pytest.approx(0.5)


# -- the coordinated-omission guard ------------------------------------------


def test_schedule_is_independent_of_elapsed_time():
    """The schedule is a pure function of its parameters: computing it
    before, during, and after arbitrary delays (a stand-in for service
    time) yields the identical send plan."""
    schedule = ArrivalSchedule(300.0, 50, kind="poisson", seed=21)
    before = schedule.offsets()
    time.sleep(0.05)  # "service time" elapses
    assert schedule.offsets() == before
    # A second instance with the same parameters agrees — nothing about
    # wall time, completions, or prior calls leaks in.
    assert ArrivalSchedule(300.0, 50, kind="poisson", seed=21).offsets() \
        == before


@pytest.fixture
def stall_server():
    """A one-worker server whose point op stalls 20 ms per request,
    behind an async transport — the overloaded-server scenario the CO
    guard exists for."""
    table = make_random_table(5, n_dims=2, cardinality=3, n_rows=20)
    faults = ServingFaults()
    server = QCServer(QCWarehouse(table, aggregate="count"), workers=1,
                      cache_size=0, faults=faults)
    faults.arm("op:point", times=None, delay_s=0.02, exc=None)
    handle = AsyncServerThread(server, port=0)
    try:
        yield table, server, handle
    finally:
        handle.close()
        server.close()


def test_stalled_server_cannot_slow_arrivals(stall_server):
    """Offered 100/s against a server that can serve 50/s: every request
    must still be *sent* (none withheld waiting on completions), the
    generator's own send lag stays far below the stall, and queueing
    delay lands in the recorded latencies."""
    table, server, handle = stall_server
    n = 30
    plan = [("point", "point " + ",".join(["*"] * table.n_dims))] * n
    schedule = ArrivalSchedule(100.0, n, kind="uniform", seed=1)
    report = run_open_loop_tcp(handle.host, handle.port, plan, schedule,
                               connections=2)
    assert report["ok"] + report["shed"] + report["timeouts"] \
        + report["errors"] == n
    # The generator kept pace: a *coordinated* sender would lag by the
    # growing queueing backlog (~150 ms at the median here), so the
    # median send lag staying under one stall interval proves the send
    # plan ignored the server (the max tolerates a rare scheduler
    # hiccup on a loaded 1-core runner).
    assert report["send_lag"]["p50_us"] < 10_000
    assert report["send_lag"]["max_us"] < 150_000
    # The stall (20 ms/request at half the needed service rate) piled
    # queueing delay into the tail: p99 far above a single service time.
    assert report["latency"]["p99_us"] > 40_000


def test_open_loop_p99_at_least_closed_loop_p99_under_stall(stall_server):
    """The regression behind the field rename: a closed-loop driver
    coordinates with the stall (each client politely waits), so its p99
    understates what an open-loop arrival process experiences."""
    table, server, handle = stall_server
    requests = point_requests(table, 24, seed=3)
    closed = run_closed_loop(server, requests, clients=2)
    open_report = run_open_loop(server, requests, rate_hz=100.0)
    assert open_report["response_latency"]["p99_us"] \
        >= closed["attempt_latency"]["p99_us"]


# -- report-field contract ---------------------------------------------------


def test_latency_summary_has_p999():
    summary = latency_summary([i / 1000.0 for i in range(1, 1001)])
    assert summary["count"] == 1000
    assert summary["p50_us"] <= summary["p99_us"] <= summary["p999_us"] \
        <= summary["max_us"]
    assert latency_summary([])["p999_us"] == 0.0


def test_closed_loop_report_keeps_deprecated_latency_alias():
    table = make_random_table(6, n_dims=2, cardinality=3, n_rows=15)
    server = QCServer(QCWarehouse(table, aggregate="count"), workers=2,
                      cache_size=0)
    try:
        requests = point_requests(table, 20, seed=5)
        closed = run_closed_loop(server, requests, clients=2)
        assert closed["attempt_latency"] == closed["latency"]
        assert "p999_us" in closed["attempt_latency"]
        open_report = run_open_loop(server, requests, rate_hz=2000.0)
        assert open_report["response_latency"] == open_report["latency"]
        assert "p999_us" in open_report["response_latency"]
    finally:
        server.close()


def test_no_threads_leak_from_harness(stall_server):
    """The harness and transport leave no threads behind (checked here
    while they are live so the fixture teardown proves the negative)."""
    table, server, handle = stall_server
    before = {t.name for t in threading.enumerate()}
    plan = [("point", "point " + ",".join(["*"] * table.n_dims))] * 5
    run_open_loop_tcp(handle.host, handle.port, plan,
                      ArrivalSchedule(500.0, 5, kind="uniform", seed=2))
    after = {t.name for t in threading.enumerate()}
    assert after == before
