"""Overload and backpressure properties of the asyncio front door.

The transport's job under pressure is to say *no* early and cheaply:
slow-loris clients must not grow server memory (the read loop stops
reading at the in-flight cap, pushing back through TCP), floods beyond
capacity must be shed with an explicit ``ServerOverloadedError`` on the
wire (not buffered into oblivion), thousands of idle connections must
cost only their sockets, and a close must drain everything it admitted
— no orphaned asyncio task, no stranded future, and an admission ledger
that still balances to the last request.
"""

from __future__ import annotations

import resource
import socket
import threading
import time

import pytest

from repro.core.warehouse import QCWarehouse
from repro.reliability.faults import ServingFaults
from repro.serving import AsyncServerThread, LineClient, QCServer

from .conftest import make_random_table


def ledger_balanced(server) -> bool:
    counters = server.stats()["counters"]
    return counters["submitted"] == (
        counters["completed"] + counters["timeouts"]
        + counters["errors"] + counters["cancelled"]
    )


def make_server(*, workers=1, queue_size=128, stall_s=0.0, cache=0):
    table = make_random_table(9, n_dims=2, cardinality=3, n_rows=20)
    faults = ServingFaults()
    server = QCServer(QCWarehouse(table, aggregate="count"),
                      workers=workers, queue_size=queue_size,
                      cache_size=cache, faults=faults)
    if stall_s:
        faults.arm("op:point", times=None, delay_s=stall_s, exc=None)
    return table, server


def point_line(table) -> str:
    return "point " + ",".join(["*"] * table.n_dims)


# -- slow-loris / in-flight cap ----------------------------------------------


def test_slow_loris_client_is_capped_not_buffered():
    """A client that pipelines 200 requests and never reads gets at most
    ``max_inflight`` admitted at a time: the read loop stops reading its
    socket, so a slow-loris costs one connection's bounded state, not
    200 queued requests."""
    table, server = make_server(workers=1, stall_s=0.05)
    handle = AsyncServerThread(server, port=0, max_inflight=4)
    try:
        before = server.stats()["counters"]["submitted"]
        sock = socket.create_connection((handle.host, handle.port))
        sock.sendall((point_line(table) + "\n").encode() * 200)
        time.sleep(0.3)  # enough for ~6 stalled services, not 200
        submitted = server.stats()["counters"]["submitted"] - before
        # cap (4) + the handful already answered in 0.3 s of 50 ms
        # stalls; nowhere near the 200 the client offered.
        assert submitted <= 12, submitted
        sock.close()
    finally:
        handle.close()
        server.close()
    assert ledger_balanced(server)


def test_broken_peer_mid_flight_keeps_ledger_balanced():
    """A client that pipelines work and disconnects without reading:
    the responder drains the admitted answers into the void, and every
    submission is still accounted for."""
    table, server = make_server(workers=2, stall_s=0.01)
    handle = AsyncServerThread(server, port=0, max_inflight=8)
    try:
        for _ in range(3):
            sock = socket.create_connection((handle.host, handle.port))
            sock.sendall((point_line(table) + "\n").encode() * 20)
            sock.close()  # vanish with responses unread
        deadline = time.time() + 5.0
        while time.time() < deadline and not ledger_balanced(server):
            time.sleep(0.02)
    finally:
        handle.close()
        server.close()
    assert ledger_balanced(server)


# -- early shedding ----------------------------------------------------------


def test_overload_sheds_early_on_the_wire():
    """Offered load ≫ capacity with a tiny admission queue: the excess
    comes back as protocol-level ``ServerOverloadedError`` lines in one
    round trip — workers never see those requests."""
    table, server = make_server(workers=1, queue_size=2, stall_s=0.05)
    handle = AsyncServerThread(server, port=0, max_inflight=64)
    try:
        client = LineClient(handle.host, handle.port)
        n = 40
        for _ in range(n):
            client.send(point_line(table))
        responses = [client.read_response() for _ in range(n)]
        client.close()
        shed = [r for r in responses
                if r.startswith("error: ServerOverloadedError")]
        ok = [r for r in responses if not r.startswith("error:")]
        assert shed, "expected protocol-level shedding under overload"
        assert ok, "some requests should still be served"
        assert len(shed) + len(ok) == n
        assert handle.door.describe()["shed_early"] == len(shed)
        assert server.stats()["counters"]["shed"] == len(shed)
    finally:
        handle.close()
        server.close()
    assert ledger_balanced(server)


def test_connection_cap_rejects_with_one_line():
    table, server = make_server()
    handle = AsyncServerThread(server, port=0, max_connections=3)
    try:
        keep = [socket.create_connection((handle.host, handle.port))
                for _ in range(3)]
        # Let the event loop accept all three before offering a fourth.
        deadline = time.time() + 2.0
        while (time.time() < deadline
               and handle.door.describe()["connections"]["active"] < 3):
            time.sleep(0.01)
        extra = socket.create_connection((handle.host, handle.port))
        line = extra.makefile().readline()
        assert line.startswith("error: ServerOverloadedError"), line
        assert extra.recv(1) == b""  # server closed it
        extra.close()
        for sock in keep:
            sock.close()
        assert handle.door.describe()["connections"]["rejected"] >= 1
    finally:
        handle.close()
        server.close()


# -- many idle connections ---------------------------------------------------


def test_thousands_of_idle_connections_are_cheap():
    """Hold as many idle connections as the fd budget allows (10k on a
    full-size box; both socket ends live in this process, so each costs
    two descriptors) — the server must accept them all and still answer
    new work promptly."""
    soft, _ = resource.getrlimit(resource.RLIMIT_NOFILE)
    n = max(64, min(10_000, (soft - 256) // 2))
    table, server = make_server(workers=2)
    handle = AsyncServerThread(server, port=0, max_connections=n + 10)
    idle = []
    try:
        for _ in range(n):
            idle.append(socket.create_connection((handle.host, handle.port)))
        deadline = time.time() + 30.0
        while (time.time() < deadline
               and handle.door.describe()["connections"]["active"] < n):
            time.sleep(0.05)
        assert handle.door.describe()["connections"]["active"] == n
        # The crowd is idle, not in the way: a working client gets
        # answered with all n connections still open.
        client = LineClient(handle.host, handle.port)
        start = time.perf_counter()
        assert not client.call(point_line(table)).startswith("error:")
        assert time.perf_counter() - start < 2.0
        client.close()
    finally:
        for sock in idle:
            sock.close()
        handle.close()
        server.close()
    assert ledger_balanced(server)


# -- deadline propagation ----------------------------------------------------


def test_budget_prefix_expires_queued_request():
    """A 1 ms budget behind a 50 ms stall: the queued request's deadline
    passes before a worker frees up, so the wire answer is
    ``DeadlineExceededError`` — the client's give-up time was honored
    server-side instead of serving into the void."""
    table, server = make_server(workers=1, stall_s=0.05)
    handle = AsyncServerThread(server, port=0)
    try:
        client = LineClient(handle.host, handle.port)
        client.send(point_line(table))          # occupies the worker
        client.send(f"@0.001 {point_line(table)}")  # expires in queue
        first = client.read_response()
        second = client.read_response()
        client.close()
        assert not first.startswith("error:")
        assert second.startswith("error: DeadlineExceededError"), second
        assert server.stats()["counters"]["timeouts"] >= 1
    finally:
        handle.close()
        server.close()
    assert ledger_balanced(server)


# -- clean drain on close ----------------------------------------------------


def test_close_with_work_in_flight_leaves_nothing_behind():
    """Close the transport while stalled requests are in flight: every
    admitted request resolves, no asyncio task survives the loop, no
    non-daemon thread outlives the close, and the ledger balances."""
    table, server = make_server(workers=2, stall_s=0.03)
    handle = AsyncServerThread(server, port=0, max_inflight=16)
    socks = []
    try:
        for _ in range(4):
            sock = socket.create_connection((handle.host, handle.port))
            sock.sendall((point_line(table) + "\n").encode() * 10)
            socks.append(sock)
        time.sleep(0.05)  # ensure some requests are genuinely in flight
    finally:
        handle.close()
        for sock in socks:
            sock.close()
    assert handle.leftover_tasks == ()
    assert not any(
        t.name.startswith("qcasync") for t in threading.enumerate()
    ), [t.name for t in threading.enumerate()]
    server.close()
    assert ledger_balanced(server)
    leaked = [t for t in threading.enumerate()
              if t is not threading.main_thread() and not t.daemon]
    assert not leaked, leaked


def test_close_is_idempotent_and_unregisters_transport():
    table, server = make_server()
    handle = AsyncServerThread(server, port=0)
    assert server.transports and server.transports[0] is handle.door
    handle.close()
    handle.close()  # second close is a no-op
    assert server.transports == ()
    assert "transports" not in server.stats()
    server.close()
    assert ledger_balanced(server)


def test_health_degrades_when_listener_stops():
    """Readiness is gated on the listener: a registered transport that
    is no longer accepting flips the health report to degraded."""
    table, server = make_server(workers=2)
    handle = AsyncServerThread(server, port=0)
    try:
        assert server.query("health")["ready"]
        # Simulate a wedged listener without tearing down the loop.
        handle.door._closing = True
        report = server.query("health")
        assert not report["ready"]
        assert report["status"] == "degraded"
        handle.door._closing = False
        assert server.query("health")["ready"]
    finally:
        handle.close()
        server.close()


@pytest.mark.parametrize("garbage", [
    "frobnicate 1,2", "point", "iceberg nope", "@-1 point *,*",
    "@abc point *,*", "", "   ",
])
def test_garbage_lines_get_typed_errors_and_hold_no_state(garbage):
    table, server = make_server()
    handle = AsyncServerThread(server, port=0)
    try:
        client = LineClient(handle.host, handle.port)
        # Garbage lines still produce exactly one error response each
        # (blank lines are skipped by the protocol, so follow with a
        # real request to prove the stream stays in sync).
        if garbage.strip():
            client.send(garbage)
            assert client.read_response().startswith("error:")
        else:
            sock_line = garbage + "\n" + point_line(table)
            client.send(sock_line.split("\n")[-1])
            assert not client.read_response().startswith("error:")
        assert not client.call(point_line(table)).startswith("error:")
        client.close()
    finally:
        handle.close()
        server.close()
    assert ledger_balanced(server)
