"""Tests for the quotient cube and QC-table (repro.cube.quotient)."""

import pytest

from repro.core.cells import ALL
from repro.cube.lattice import (
    full_cube,
    is_convex_partition,
    quotient_classes,
)
from repro.cube.quotient import QCTable, QuotientCube, class_lower_bounds
from tests.conftest import all_cells, approx_equal, make_random_table


class TestQuotientCube:
    def test_paper_example_has_six_classes(self, sales_table):
        qc = QuotientCube.from_table(sales_table, ("avg", "Sale"))
        assert len(qc) == 6

    def test_paper_class_c3_bounds(self, sales_table):
        qc = QuotientCube.from_table(sales_table, ("avg", "Sale"))
        ub = sales_table.encode_cell(("S2", "P1", "f"))
        c3 = qc.class_of_upper_bound(ub)
        decoded = [sales_table.decode_cell(lb) for lb in c3.lower_bounds]
        # "(*,*,f), (S2,*,*) are the lower bounds ... of class C3"
        assert sorted(decoded) == [("*", "*", "f"), ("S2", "*", "*")]
        assert c3.value == 9.0

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_bruteforce_classes(self, seed):
        table = make_random_table(seed)
        qc = QuotientCube.from_table(table, ("sum", "m"))
        qc.check_well_formed()
        oracle = quotient_classes(table, ("sum", "m"))
        assert {c.upper_bound for c in qc} == {
            c.upper_bound for c in oracle
        }
        by_ub = {c.upper_bound: c for c in oracle}
        for qclass in qc:
            reference = by_ub[qclass.upper_bound]
            assert set(qclass.lower_bounds) == set(reference.lower_bounds)
            assert approx_equal(qclass.value, reference.value)

    @pytest.mark.parametrize("seed", range(8))
    def test_cover_partition_is_convex(self, seed):
        table = make_random_table(seed, n_dims=3, cardinality=3)
        oracle = quotient_classes(table, "count")
        assert is_convex_partition(table, oracle)

    @pytest.mark.parametrize("seed", range(8))
    def test_class_of_cell_agrees_with_membership(self, seed):
        table = make_random_table(seed + 40)
        qc = QuotientCube.from_table(table, "count")
        from repro.cube.lattice import closure

        for cell in all_cells(table):
            qclass = qc.class_of_cell(cell)
            expected = closure(table, cell)
            if expected is None:
                assert qclass is None
            else:
                assert qclass.upper_bound == expected

    def test_lattice_child_ids_are_more_general(self, sales_table):
        qc = QuotientCube.from_table(sales_table, "count")
        by_id = {c.class_id: c for c in qc}
        for qclass in qc:
            for child_id in qclass.child_ids:
                child = by_id[child_id]
                # A lattice child is strictly more general: every member of
                # the child generalizes some member here; upper bounds obey
                # child_ub <= some lower bound's region.  Weak check:
                assert child.upper_bound != qclass.upper_bound

    def test_lattice_parents_inverse_of_children(self, sales_table):
        qc = QuotientCube.from_table(sales_table, "count")
        for qclass in qc:
            for child_id in qclass.child_ids:
                assert qclass.class_id in qc.lattice_parents(child_id)


class TestClassLowerBounds:
    @pytest.mark.parametrize("seed", range(10))
    def test_lower_bounds_are_minimal_members(self, seed):
        table = make_random_table(seed + 70)
        from repro.cube.lattice import closure

        for qclass in quotient_classes(table, "count"):
            got = class_lower_bounds(table, qclass.upper_bound)
            assert set(got) == set(qclass.lower_bounds)
            for lb in got:
                assert closure(table, lb) == qclass.upper_bound

    def test_root_class_lower_bound_is_all_star(self, sales_table):
        lbs = class_lower_bounds(sales_table, (ALL, ALL, ALL))
        assert lbs == [(ALL, ALL, ALL)]


class TestQCTable:
    def test_one_row_per_class(self, sales_table):
        qt = QCTable.from_table(sales_table, ("avg", "Sale"))
        assert len(qt) == 6

    def test_rows_sorted_by_bound(self, sales_table):
        from repro.core.cells import dict_sort_key

        qt = QCTable.from_table(sales_table, ("avg", "Sale"))
        keys = [dict_sort_key(ub) for ub, _ in qt.rows]
        assert keys == sorted(keys)

    def test_lookup_upper_bound(self, sales_table):
        qt = QCTable.from_table(sales_table, ("avg", "Sale"))
        ub = sales_table.encode_cell(("S2", "P1", "f"))
        assert qt.lookup_upper_bound(ub) == 9.0
        assert qt.lookup_upper_bound((ALL, 0, 0)) is None

    @pytest.mark.parametrize("seed", range(10))
    def test_point_query_with_base_table(self, seed):
        table = make_random_table(seed)
        qt = QCTable.from_table(table, ("sum", "m"))
        oracle = full_cube(table, ("sum", "m"))
        for cell in list(all_cells(table))[:40]:
            assert approx_equal(
                qt.point_query(cell, table), oracle.get(cell)
            )
