"""The segmented-vs-monolithic differential oracle.

Random mutation programs — mixed insert/delete batches over raw-label
records — are executed against two warehouses built from the same base
table: the proven monolithic :class:`~repro.core.warehouse.QCWarehouse`
and the :class:`~repro.segments.SegmentedWarehouse` under test (with
aggressively small seal thresholds, so every program crosses several
seal boundaries).  After every batch, and again after forcing
compaction, every query family must answer identically:

point / range / iceberg / constrained iceberg / class_of / rollup /
rollup_exceptions / drilldowns / rollups / open_class.

A third execution checkpoints the segmented store mid-program, keeps
writing, then recovers from the manifest + WAL into a fresh process
image and re-checks parity — proving the scatter-gather answer is
durable, not just resident.

Like the batched-maintenance oracle, measures are a pure function of
the dimension key so delete-by-key is unambiguous under duplicates.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.warehouse import QCWarehouse
from repro.cube.aggregates import values_close
from repro.cube.schema import Schema
from repro.cube.table import BaseTable
from repro.errors import MaintenanceError
from repro.segments import SegmentedWarehouse

N_DIMS = 3
CARD = 3
FRESH = 2  # extra labels per dimension a program may mint

SCHEMA = Schema(
    dimensions=[f"D{j}" for j in range(N_DIMS)], measures=("m",)
)

#: Small seal/compaction thresholds so even short programs cross
#: several segment boundaries.
SEG_OPTIONS = dict(
    seal_rows=6, seal_batches=3, compact_min_segments=2,
    cache_size=8,
)


def _label(code) -> str:
    return f"v{code}"


def _measure(codes) -> float:
    """Measure as a pure function of the key (see module docstring)."""
    return float((3 * codes[0] + 5 * codes[1] + 7 * codes[2]) % 10 + 1)


def _gen_record(rng, fresh=False):
    codes = []
    for _ in range(N_DIMS):
        if fresh and rng.random() < 0.3:
            codes.append(CARD + rng.randrange(FRESH))
        else:
            codes.append(rng.randrange(CARD))
    return tuple(_label(c) for c in codes) + (_measure(codes),)


def make_program(seed, n_batches, n_rows=None, max_batch=5):
    """``(base_records, batches, final_records)`` with feasible deletes."""
    rng = random.Random(seed)
    n_rows = rng.randint(0, 10) if n_rows is None else n_rows
    base = []
    for _ in range(n_rows):
        codes = [rng.randrange(CARD) for _ in range(N_DIMS)]
        base.append(tuple(_label(c) for c in codes) + (_measure(codes),))
    current = list(base)
    batches = []
    for _ in range(n_batches):
        n_del = rng.randint(0, min(3, len(current)))
        deletes = rng.sample(current, n_del) if n_del else []
        for record in deletes:
            current.remove(record)
        n_ins = rng.randint(0 if deletes else 1, max_batch)
        inserts = [
            _gen_record(rng, fresh=rng.random() < 0.4) for _ in range(n_ins)
        ]
        if inserts and rng.random() < 0.3:
            inserts.append(rng.choice(inserts))  # in-batch duplicate
        current.extend(inserts)
        batches.append((inserts, deletes))
    return base, batches, current


# -- parity assertions -------------------------------------------------------


def _domains(records):
    domains = [set() for _ in range(N_DIMS)]
    for record in records:
        for j in range(N_DIMS):
            domains[j].add(record[j])
    for j in range(N_DIMS):
        domains[j].add(_label(CARD + FRESH))  # never-seen label -> None
    return [sorted(d) for d in domains]


def _raw_cells(domains):
    out = [()]
    for labels in domains:
        out = [cell + (v,) for cell in out for v in ["*"] + labels]
    return out


def _dicts_close(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(values_close(a[k], b[k]) for k in a)


def _views_close(a: list, b: list) -> bool:
    """Order-insensitive (cell, value) list comparison."""
    a = sorted(a, key=lambda cv: repr(cv[0]))
    b = sorted(b, key=lambda cv: repr(cv[0]))
    return [c for c, _ in a] == [c for c, _ in b] and all(
        values_close(x, y) for (_, x), (_, y) in zip(a, b)
    )


def assert_parity(mono, seg, records, rng, label):
    """Every query family answers identically on both warehouses."""
    domains = _domains(records)
    cells = _raw_cells(domains)
    for cell in cells:
        assert values_close(mono.point(cell), seg.point(cell)) or (
            mono.point(cell) is None and seg.point(cell) is None
        ), f"{label}: point({cell!r})"
    for _ in range(3):
        spec = tuple(
            "*" if rng.random() < 0.4 else rng.sample(d, min(len(d), 2))
            for d in domains
        )
        assert _dicts_close(mono.range(spec), seg.range(spec)), (
            f"{label}: range({spec!r})"
        )
    for threshold in (1.0, 5.0, 20.0):
        assert Counter(mono.iceberg(threshold)) == \
            Counter(seg.iceberg(threshold)), f"{label}: iceberg({threshold})"
        spec = tuple(
            "*" if rng.random() < 0.5 else rng.sample(d, min(len(d), 2))
            for d in domains
        )
        assert _dicts_close(
            mono.iceberg_in_range(spec, threshold),
            seg.iceberg_in_range(spec, threshold),
        ), f"{label}: iceberg_in_range({spec!r}, {threshold})"
    # Exploration parity on a sample of populated cells.
    sample = rng.sample(records, min(4, len(records))) if records else []
    for record in sample:
        cell = record[:N_DIMS]
        mono_cls, seg_cls = mono.class_of(cell), seg.class_of(cell)
        assert mono_cls[0] == seg_cls[0] and \
            values_close(mono_cls[1], seg_cls[1]), f"{label}: class_of({cell!r})"
        for op in ("rollup", "rollup_exceptions", "drilldowns", "rollups"):
            assert _views_close(
                getattr(mono, op)(cell), getattr(seg, op)(cell)
            ), f"{label}: {op}({cell!r})"
        mono_open, seg_open = mono.open_class(cell), seg.open_class(cell)
        assert mono_open["upper_bound"] == seg_open["upper_bound"], (
            f"{label}: open_class({cell!r}) upper bound"
        )
        assert sorted(mono_open["lower_bounds"], key=repr) == \
            sorted(seg_open["lower_bounds"], key=repr), (
                f"{label}: open_class({cell!r}) lower bounds"
            )
        assert sorted(mono_open["members"], key=repr) == \
            sorted(seg_open["members"], key=repr), (
                f"{label}: open_class({cell!r}) members"
            )
        assert values_close(mono_open["value"], seg_open["value"]), (
            f"{label}: open_class({cell!r}) value"
        )


def _build_pair(base_records):
    table = BaseTable.from_records(base_records, SCHEMA)
    mono = QCWarehouse(table, ("sum", "m"), cache_size=0)
    seg = SegmentedWarehouse(
        BaseTable.from_records(base_records, SCHEMA), ("sum", "m"),
        **SEG_OPTIONS,
    )
    return mono, seg


def check_program(seed, n_batches, n_rows=None, max_batch=5):
    base, batches, final = make_program(seed, n_batches, n_rows, max_batch)
    mono, seg = _build_pair(base)
    rng = random.Random(seed ^ 0xC0DE)
    current = list(base)
    for i, (inserts, deletes) in enumerate(batches):
        mono.maintain(inserts=inserts, deletes=deletes)
        seg.maintain(inserts=inserts, deletes=deletes)
        for record in deletes:
            current.remove(record)
        current.extend(inserts)
        assert_parity(mono, seg, current, rng, f"batch {i}")
    assert sorted(current) == sorted(final)
    # Force the backlog through compaction and re-check: the merged
    # segments must answer exactly like the originals.
    compacted = seg.compact_now()
    assert_parity(mono, seg, final, rng, f"after {compacted} compactions")
    assert seg.n_rows == mono.table.n_rows
    report = seg.verify(deep=True, samples=None)
    assert report.ok, report.issues


# -- the oracle --------------------------------------------------------------


class TestSegmentedOracle:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n_batches=st.integers(1, 6))
    def test_random_programs(self, seed, n_batches):
        check_program(seed, n_batches)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_batches_larger_than_head(self, seed):
        """Single batches bigger than seal_rows: multiple rows land and
        the head seals immediately after the batch."""
        check_program(seed, n_batches=2, n_rows=2, max_batch=16)

    @pytest.mark.parametrize("seed", range(6))
    def test_pinned_programs(self, seed):
        """A deterministic corpus that always runs, hypothesis aside."""
        check_program(seed, n_batches=5)


class TestRecoveryParity:
    """Checkpoint mid-program, keep writing, crash, recover, compare."""

    @pytest.mark.parametrize("seed", range(4))
    def test_recover_matches_monolithic(self, seed, tmp_path):
        base, batches, final = make_program(seed, n_batches=6)
        mono, seg = _build_pair(base)
        seg.attach_wal(tmp_path / "seg.wal")
        rng = random.Random(seed ^ 0xD1CE)
        half = len(batches) // 2
        for inserts, deletes in batches[:half]:
            mono.maintain(inserts=inserts, deletes=deletes)
            seg.maintain(inserts=inserts, deletes=deletes)
        seg.checkpoint(tmp_path / "ckpt")
        for inserts, deletes in batches[half:]:
            mono.maintain(inserts=inserts, deletes=deletes)
            seg.maintain(inserts=inserts, deletes=deletes)
        # "Crash": abandon `seg`; recover from manifest + WAL tail.
        recovered = SegmentedWarehouse.recover(
            tmp_path / "ckpt", tmp_path / "seg.wal", SCHEMA,
            **SEG_OPTIONS,
        )
        assert recovered.last_recovery["replayed"] == len(batches) - half
        assert recovered.last_recovery["skipped"] == []
        assert_parity(mono, recovered, final, rng, "after recovery")
        recovered.compact_now()
        assert_parity(mono, recovered, final, rng,
                      "after recovery + compaction")

    @pytest.mark.parametrize("seed", range(2))
    def test_checkpoint_after_compaction(self, seed, tmp_path):
        """Compaction before the checkpoint changes which segment files
        exist; recovery must follow the manifest, not stale files."""
        base, batches, final = make_program(seed + 100, n_batches=6)
        mono, seg = _build_pair(base)
        seg.attach_wal(tmp_path / "seg.wal")
        rng = random.Random(seed)
        for inserts, deletes in batches:
            mono.maintain(inserts=inserts, deletes=deletes)
            seg.maintain(inserts=inserts, deletes=deletes)
        seg.compact_now()
        seg.checkpoint(tmp_path / "ckpt")
        recovered = SegmentedWarehouse.recover(
            tmp_path / "ckpt", tmp_path / "seg.wal", SCHEMA, **SEG_OPTIONS
        )
        assert recovered.last_recovery["replayed"] == 0
        assert_parity(mono, recovered, final, rng, "post-compaction ckpt")


class TestFailureParity:
    def test_unmatched_delete_fails_both_and_changes_neither(self):
        base, batches, _ = make_program(3, n_batches=3)
        mono, seg = _build_pair(base)
        for inserts, deletes in batches:
            mono.maintain(inserts=inserts, deletes=deletes)
            seg.maintain(inserts=inserts, deletes=deletes)
        bogus = ("v9", "v9", "v9", 1.0)
        good = _gen_record(random.Random(0))
        with pytest.raises(MaintenanceError):
            mono.maintain(inserts=[good], deletes=[bogus])
        with pytest.raises(MaintenanceError):
            seg.maintain(inserts=[good], deletes=[bogus])
        rng = random.Random(99)
        records = [r for r in _final_records(base, batches)]
        assert_parity(mono, seg, records, rng, "after failed batch")

    def test_delete_more_copies_than_exist_fails(self):
        record = ("v0", "v0", "v0", _measure((0, 0, 0)))
        mono, seg = _build_pair([record, record])
        for wh in (mono, seg):
            with pytest.raises(MaintenanceError):
                wh.maintain(deletes=[record] * 3)
        assert mono.point(("v0", "v0", "v0")) is not None
        assert values_close(
            mono.point(("v0", "v0", "v0")), seg.point(("v0", "v0", "v0"))
        )


def _final_records(base, batches):
    current = list(base)
    for inserts, deletes in batches:
        for record in deletes:
            current.remove(record)
        current.extend(inserts)
    return current
