"""Unit and property tests for the cell algebra (repro.core.cells)."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cells import (
    ALL,
    all_cell,
    comparable,
    covers,
    dict_sort_key,
    format_cell,
    generalizations,
    generalizes,
    is_all,
    is_base,
    meet,
    meet_of_tuples,
    nonstar_positions,
    specialize,
    star_count,
    strictly_generalizes,
)


def cells(n_dims=3, card=3):
    """Hypothesis strategy for cells over a small domain."""
    value = st.one_of(st.just(ALL), st.integers(min_value=0, max_value=card - 1))
    return st.tuples(*([value] * n_dims))


def tuples_(n_dims=3, card=3):
    return st.tuples(*([st.integers(min_value=0, max_value=card - 1)] * n_dims))


class TestAllMarker:
    def test_singleton(self):
        assert type(ALL)() is ALL

    def test_repr(self):
        assert repr(ALL) == "*"

    def test_is_all(self):
        assert is_all(ALL)
        assert not is_all(0)
        assert not is_all(None)

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(ALL)) is ALL

    def test_all_cell(self):
        assert all_cell(3) == (ALL, ALL, ALL)


class TestBasicPredicates:
    def test_is_base(self):
        assert is_base((1, 2, 3))
        assert not is_base((1, ALL, 3))

    def test_star_count(self):
        assert star_count((ALL, 1, ALL)) == 2
        assert star_count((1, 2)) == 0

    def test_nonstar_positions(self):
        assert nonstar_positions((ALL, 5, ALL, 7)) == (1, 3)

    def test_covers_matches_on_nonstar_dims(self):
        assert covers((1, ALL, 3), (1, 9, 3))
        assert not covers((1, ALL, 3), (2, 9, 3))

    def test_all_cell_covers_everything(self):
        assert covers(all_cell(3), (4, 5, 6))


class TestGeneralization:
    def test_generalizes_reflexive(self):
        assert generalizes((1, ALL), (1, ALL))

    def test_generalizes_examples(self):
        assert generalizes((ALL, ALL), (1, 2))
        assert generalizes((1, ALL), (1, 2))
        assert not generalizes((1, 2), (1, ALL))

    def test_strict(self):
        assert strictly_generalizes((1, ALL), (1, 2))
        assert not strictly_generalizes((1, 2), (1, 2))

    def test_comparable(self):
        assert comparable((ALL, 2), (1, 2))
        assert not comparable((1, ALL), (ALL, 2))

    @given(cells(), cells(), cells())
    @settings(max_examples=200, deadline=None)
    def test_generalizes_is_transitive(self, a, b, c):
        if generalizes(a, b) and generalizes(b, c):
            assert generalizes(a, c)

    @given(cells(), cells())
    @settings(max_examples=200, deadline=None)
    def test_generalizes_antisymmetric(self, a, b):
        if generalizes(a, b) and generalizes(b, a):
            assert a == b


class TestMeet:
    def test_meet_example(self):
        assert meet((1, 2, ALL), (1, 3, ALL)) == (1, ALL, ALL)

    def test_meet_with_all(self):
        assert meet((1, 2), (ALL, ALL)) == (ALL, ALL)

    @given(cells(), cells())
    @settings(max_examples=200, deadline=None)
    def test_meet_commutative(self, a, b):
        assert meet(a, b) == meet(b, a)

    @given(cells())
    @settings(max_examples=100, deadline=None)
    def test_meet_idempotent(self, a):
        assert meet(a, a) == a

    @given(cells(), cells(), cells())
    @settings(max_examples=200, deadline=None)
    def test_meet_associative(self, a, b, c):
        assert meet(meet(a, b), c) == meet(a, meet(b, c))

    @given(cells(), cells())
    @settings(max_examples=200, deadline=None)
    def test_meet_is_greatest_lower_bound(self, a, b):
        m = meet(a, b)
        assert generalizes(m, a) and generalizes(m, b)

    @given(cells(), cells(), cells())
    @settings(max_examples=200, deadline=None)
    def test_meet_dominates_common_generalizations(self, a, b, c):
        if generalizes(c, a) and generalizes(c, b):
            assert generalizes(c, meet(a, b))

    def test_meet_of_tuples(self):
        assert meet_of_tuples([(1, 2, 3), (1, 4, 3)]) == (1, ALL, 3)

    def test_meet_of_tuples_single(self):
        assert meet_of_tuples([(7, 8)]) == (7, 8)

    def test_meet_of_tuples_empty_raises(self):
        with pytest.raises(ValueError):
            meet_of_tuples([])

    @given(st.lists(tuples_(), min_size=1, max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_meet_of_tuples_covers_all_inputs(self, rows):
        m = meet_of_tuples(rows)
        assert all(covers(m, r) for r in rows)


class TestEnumeration:
    def test_specialize(self):
        assert specialize((ALL, ALL), 1, 5) == (ALL, 5)

    def test_generalizations_count(self):
        gens = list(generalizations((1, 2, ALL)))
        assert len(gens) == 4  # 2^2 over the non-star positions
        assert (ALL, ALL, ALL) in gens
        assert (1, 2, ALL) in gens

    @given(cells())
    @settings(max_examples=100, deadline=None)
    def test_generalizations_all_generalize(self, cell):
        for g in generalizations(cell):
            assert generalizes(g, cell)

    @given(cells())
    @settings(max_examples=100, deadline=None)
    def test_generalizations_unique_and_complete(self, cell):
        gens = list(generalizations(cell))
        assert len(gens) == len(set(gens)) == 2 ** len(nonstar_positions(cell))


class TestOrderingAndFormat:
    def test_dict_sort_key_star_first(self):
        assert dict_sort_key((ALL, 1)) < dict_sort_key((0, 0))

    def test_dict_sort_key_dimension_major(self):
        assert dict_sort_key((0, 5)) < dict_sort_key((1, 0))

    @given(cells(), cells())
    @settings(max_examples=200, deadline=None)
    def test_generalization_implies_dict_order(self, a, b):
        if generalizes(a, b):
            assert dict_sort_key(a) <= dict_sort_key(b)

    def test_format_plain(self):
        assert format_cell((1, ALL, 2)) == "(1, *, 2)"

    def test_format_with_decoder(self):
        labels = {0: {1: "S1"}, 2: {2: "s"}}
        decoder = lambda dim, code: labels[dim][code]
        assert format_cell((1, ALL, 2), decoder) == "(S1, *, s)"
