"""QCServer behavior: admission control, deadlines, metrics, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.warehouse import QCWarehouse
from repro.errors import (
    DeadlineExceededError,
    QueryError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.serving import QCServer
from repro.serving.metrics import LatencyHistogram, ServerMetrics


@pytest.fixture
def warehouse(sales_table):
    return QCWarehouse(sales_table, aggregate="avg(Sale)")


@pytest.fixture
def server(warehouse):
    with QCServer(warehouse, workers=2, queue_size=8) as srv:
        yield srv


def register_gate(server):
    """Install an op that blocks until ``release`` is set, so tests can
    hold every worker busy deterministically."""
    release = threading.Event()
    entered = threading.Event()

    def gate(snapshot):
        entered.set()
        release.wait(5.0)
        return "gated"

    server.register_op("gate", gate)
    return release, entered


class TestQueries:
    def test_point_range_iceberg(self, server):
        assert server.point(("S2", "*", "f")) == 9.0
        assert server.range((["S1", "S2"], "*", "s")) == {
            ("S1", "*", "s"): 9.0
        }
        results = dict(server.iceberg(9.0))
        assert results[("S1", "P2", "s")] == 12.0

    def test_exploration_ops_match_warehouse(self, server, warehouse):
        cell = ("S2", "P1", "f")
        for op, method in [
            ("rollup", warehouse.rollup),
            ("rollups", warehouse.rollups),
            ("drilldowns", warehouse.drilldowns),
            ("rollup_exceptions", warehouse.rollup_exceptions),
            ("open_class", warehouse.open_class),
            ("class_of", warehouse.class_of),
        ]:
            assert server.query(op, cell) == method(cell)

    def test_unknown_op_rejected_at_submission(self, server):
        with pytest.raises(QueryError, match="unknown server op"):
            server.submit("cube_everything")

    def test_query_error_propagates_through_future(self, server):
        with pytest.raises(QueryError):
            server.query("rollup", ("S1", "P1", "f"))
        assert server.stats()["counters"]["errors"] == 1

    def test_iceberg_comparator_kwarg(self, server):
        below = dict(server.query("iceberg", 6.0, op="<="))
        assert all(value <= 6.0 for value in below.values())

    def test_cached_answer_is_copied(self, server):
        first = server.range(("*", "*", "s"))
        first[("poison", "poison", "poison")] = -1.0
        assert ("poison",) * 3 not in server.range(("*", "*", "s"))

    def test_cache_hits_across_requests(self, server):
        for _ in range(3):
            server.point(("S2", "*", "f"))
        cache = server.stats()["cache"]
        assert cache["hits"] >= 2

    def test_register_op_extension(self, server):
        server.register_op("n_rows", lambda snap: snap.describe()["n_rows"])
        assert server.query("n_rows") == 3


class TestWrites:
    def test_insert_swaps_snapshot(self, server):
        before = server.snapshot
        assert server.point(("S3", "P1", "s")) is None
        server.insert([("S3", "P1", "s", 5.0)])
        assert server.snapshot is not before
        assert server.point(("S3", "P1", "s")) == 5.0
        assert server.stats()["counters"]["snapshot_swaps"] == 1

    def test_delete_swaps_snapshot(self, server):
        server.delete([("S1", "P2", "s", 12.0)])
        assert server.point(("S1", "P2", "s")) is None
        assert server.point(("*", "*", "*")) == 7.5  # avg of 6.0, 9.0

    def test_modify_publishes_once(self, server):
        server.modify([("S2", "P1", "f", 9.0)], [("S2", "P1", "f", 3.0)])
        assert server.point(("S2", "P1", "f")) == 3.0
        assert server.stats()["counters"]["snapshot_swaps"] == 1

    def test_write_invalidates_cached_answers(self, server):
        assert server.point(("*", "*", "*")) == 9.0
        server.insert([("S3", "P3", "s", 21.0)])
        assert server.point(("*", "*", "*")) == 12.0

    def test_readers_never_take_the_write_lock(self, server):
        """With the writer lock held, reads still complete: readers go
        through the snapshot reference only."""
        with server._write_lock:
            assert server.point(("S2", "*", "f"), timeout=2.0) == 9.0

    def test_dict_serving_warehouse_rejected(self, sales_table):
        mutable = QCWarehouse(sales_table, serve_frozen=False)
        with pytest.raises(ServingError, match="frozen-serving"):
            QCServer(mutable, workers=1)


class TestAdmissionControl:
    def test_queue_full_sheds(self, warehouse):
        with QCServer(warehouse, workers=1, queue_size=2) as srv:
            release, entered = register_gate(srv)
            blocker = srv.submit("gate")
            assert entered.wait(5.0)
            fillers = [srv.submit("point", ("S2", "*", "f"))
                       for _ in range(2)]
            with pytest.raises(ServerOverloadedError):
                srv.submit("point", ("S2", "*", "f"))
            assert srv.stats()["counters"]["shed"] == 1
            release.set()
            assert blocker.result(5.0) == "gated"
            assert [f.result(5.0) for f in fillers] == [9.0, 9.0]

    def test_deadline_expires_in_queue(self, warehouse):
        with QCServer(warehouse, workers=1, queue_size=8) as srv:
            release, entered = register_gate(srv)
            blocker = srv.submit("gate")
            assert entered.wait(5.0)
            doomed = srv.submit("point", ("S2", "*", "f"), timeout=0.02)
            time.sleep(0.1)
            release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(5.0)
            assert blocker.result(5.0) == "gated"
            assert srv.stats()["counters"]["timeouts"] == 1

    def test_default_timeout_applies(self, warehouse):
        with QCServer(warehouse, workers=1, queue_size=8,
                      default_timeout=0.02) as srv:
            release, entered = register_gate(srv)
            srv.submit("gate", timeout=10.0)
            assert entered.wait(5.0)
            doomed = srv.submit("point", ("S2", "*", "f"))
            time.sleep(0.1)
            release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(5.0)


class TestLifecycle:
    def test_close_is_idempotent_and_joins_workers(self, warehouse):
        srv = QCServer(warehouse, workers=3, name="leaktest")
        assert srv.point(("S2", "*", "f")) == 9.0
        srv.close()
        srv.close()
        assert srv.stats()["workers"]["alive"] == 0
        assert not any(
            t.name.startswith("leaktest") for t in threading.enumerate()
        )

    def test_workers_are_non_daemon(self, server):
        assert all(not t.daemon for t in server._workers)

    def test_submit_after_close_rejected(self, warehouse):
        srv = QCServer(warehouse, workers=1)
        srv.close()
        with pytest.raises(ServerClosedError):
            srv.submit("point", ("S2", "*", "f"))
        with pytest.raises(ServerClosedError):
            srv.insert([("S3", "P1", "s", 1.0)])

    def test_close_fails_stranded_requests(self, warehouse):
        srv = QCServer(warehouse, workers=1, queue_size=8)
        release, entered = register_gate(srv)
        blocker = srv.submit("gate")
        assert entered.wait(5.0)
        stranded = [srv.submit("point", ("S2", "*", "f"))
                    for _ in range(3)]
        closer = threading.Thread(target=srv.close)
        closer.start()
        time.sleep(0.05)
        release.set()
        closer.join(5.0)
        assert blocker.result(5.0) == "gated"
        for future in stranded:
            with pytest.raises(ServerClosedError):
                future.result(5.0)

    def test_context_manager_closes(self, warehouse):
        with QCServer(warehouse, workers=1) as srv:
            assert srv.point(("S2", "*", "f")) == 9.0
        assert srv.closed


class TestMetrics:
    def test_counters_are_consistent(self, server):
        for _ in range(5):
            server.point(("S2", "*", "f"))
        with pytest.raises(QueryError):
            server.query("rollup", ("S1", "P1", "f"))
        counters = server.stats()["counters"]
        assert counters["submitted"] == 6
        assert counters["submitted"] == (
            counters["completed"] + counters["timeouts"]
            + counters["errors"] + counters["cancelled"]
        )

    def test_per_op_histograms(self, server):
        server.point(("S2", "*", "f"))
        server.range(("*", "*", "s"))
        ops = server.stats()["ops"]
        assert ops["point"]["count"] == 1
        assert ops["range"]["count"] == 1
        assert ops["point"]["p50_us"] > 0

    def test_write_latency_recorded(self, server):
        server.insert([("S3", "P1", "s", 5.0)])
        assert server.stats()["ops"]["write:insert"]["count"] == 1

    def test_stats_shape(self, server):
        stats = server.stats()
        assert stats["queue"] == {"depth": 0, "maxsize": 8}
        assert stats["workers"]["configured"] == 2
        assert stats["snapshot"]["frozen"] is True
        assert stats["closed"] is False

    def test_histogram_percentiles(self):
        hist = LatencyHistogram()
        for us in (1, 10, 100, 1000, 10000):
            hist.observe(us / 1e6)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["p50_us"] <= snap["p90_us"] <= snap["p99_us"]
        assert snap["max_us"] >= snap["p99_us"]

    def test_metrics_custom_counter(self):
        metrics = ServerMetrics()
        metrics.counter("special").inc(3)
        assert metrics.to_dict()["counters"]["special"] == 3


def ledger_balances(counters) -> bool:
    """The admission ledger: every submitted request has one outcome."""
    return counters["submitted"] == (
        counters["completed"] + counters["timeouts"]
        + counters["errors"] + counters["cancelled"]
    )


class TestCancellation:
    def test_cancelled_request_counted_in_ledger(self, warehouse):
        with QCServer(warehouse, workers=1, queue_size=8) as srv:
            release, entered = register_gate(srv)
            blocker = srv.submit("gate")
            assert entered.wait(5.0)
            victim = srv.submit("point", ("S2", "*", "f"))
            assert victim.cancel()
            release.set()
            assert blocker.result(5.0) == "gated"
            deadline = time.monotonic() + 5.0
            while (srv.stats()["counters"]["cancelled"] < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            counters = srv.stats()["counters"]
            assert counters["cancelled"] == 1
            assert ledger_balances(counters)

    def test_cancelled_future_stranded_at_close(self, warehouse):
        """close() must not blow up on a stranded request whose future
        the caller already cancelled; it lands under ``cancelled``."""
        srv = QCServer(warehouse, workers=1, queue_size=8)
        release, entered = register_gate(srv)
        blocker = srv.submit("gate")
        assert entered.wait(5.0)
        stranded = srv.submit("point", ("S2", "*", "f"))
        dropped = srv.submit("point", ("S2", "*", "f"))
        assert dropped.cancel()
        closer = threading.Thread(target=srv.close)
        closer.start()
        time.sleep(0.05)
        release.set()
        closer.join(5.0)
        assert not closer.is_alive()
        assert blocker.result(5.0) == "gated"
        with pytest.raises(ServerClosedError):
            stranded.result(5.0)
        counters = srv.stats()["counters"]
        assert counters["stranded"] == 2
        assert counters["cancelled"] == 1
        assert ledger_balances(counters)


class TestWritePath:
    """The phased write pipeline: maintain -> refreeze -> publish -> warm."""

    def test_write_phase_split_in_stats(self, server):
        server.insert([("S3", "P1", "s", 5.0)])
        stats = server.stats()
        phases = stats["write_phases"]
        for phase in ("maintain", "refreeze", "publish", "warm"):
            assert phases[phase]["count"] == 1
        # Phase histograms are grouped, not duplicated under ops.
        assert not any(op.startswith("write_phase:") for op in stats["ops"])
        counters = stats["counters"]
        assert counters["refreeze_patched"] + counters["refreeze_full"] == 1
        assert stats["refreeze"]["mode"] in ("patched", "full", "compacted",
                                             "fresh")

    def test_small_write_takes_patched_refreeze(self, sales_table):
        # The sales tree is tiny, so one insert dirties more than the
        # default 25% ratio; a permissive ratio proves the plumbing.
        warehouse = QCWarehouse(sales_table, aggregate="avg(Sale)",
                                full_refreeze_ratio=1.0)
        with QCServer(warehouse, workers=2) as server:
            server.point(("S2", "*", "f"))  # compile the initial view
            server.insert([("S3", "P1", "s", 5.0)])
            stats = server.stats()
            assert stats["refreeze"]["mode"] == "patched"
            assert stats["counters"]["refreeze_patched"] == 1

    def test_cache_warmed_after_swap(self, warehouse):
        with QCServer(warehouse, workers=2, warm_keys=8) as server:
            for _ in range(3):
                assert server.point(("S2", "*", "f")) == 9.0
            server.insert([("S3", "P1", "s", 5.0)])
            stats = server.stats()
            assert stats["counters"]["cache_warmed"] > 0
            assert stats["cache"]["warmed"] > 0
            # The warmed answer is correct on the new snapshot.
            assert server.point(("S2", "*", "f")) == 9.0

    def test_warm_keys_zero_disables_warming(self, sales_table):
        warehouse = QCWarehouse(sales_table, aggregate="avg(Sale)")
        with QCServer(warehouse, workers=2, warm_keys=0) as server:
            for _ in range(3):
                server.point(("S2", "*", "f"))
            server.insert([("S3", "P1", "s", 5.0)])
            stats = server.stats()
            assert stats["counters"]["cache_warmed"] == 0
            assert stats["write_phases"]["warm"]["count"] == 1

    def test_warmed_answers_reflect_the_write(self, warehouse):
        """Warming replays against the *new* snapshot: a cell the write
        changed must be re-cached with its post-write answer."""
        with QCServer(warehouse, workers=2, warm_keys=8) as server:
            for _ in range(3):
                assert server.point(("S1", "P1", "s")) == 6.0
            server.insert([("S1", "P1", "s", 12.0)])  # avg becomes 9.0
            assert server.point(("S1", "P1", "s")) == 9.0
