"""Tests for semantic exploration (intelligent roll-up, class drill-in)."""

import pytest

from repro.core.construct import build_qctree
from repro.core.explore import (
    class_of,
    drill_into_class,
    intelligent_rollup,
    lattice_drilldowns,
    lattice_rollups,
    rollup_exceptions,
)
from repro.errors import QueryError
from tests.conftest import make_random_table


@pytest.fixture
def tree(sales_table):
    return build_qctree(sales_table, ("avg", "Sale"))


class TestIntelligentRollup:
    def test_paper_intro_example(self, tree, sales_table):
        """From (S2,P1,f): most general context with AVG 9 is (*,*,*)."""
        cell = sales_table.encode_cell(("S2", "P1", "f"))
        views = intelligent_rollup(tree, cell)
        decoded = [sales_table.decode_cell(v.upper_bound) for v in views]
        assert decoded[0] == ("*", "*", "*")
        assert ("S2", "P1", "f") in decoded
        assert all(v.value == 9.0 for v in views)

    def test_paper_intro_exceptions(self, tree, sales_table):
        """The excluded context is the (*,P1,*) class with AVG 7.5."""
        cell = sales_table.encode_cell(("S2", "P1", "f"))
        exceptions = rollup_exceptions(tree, cell)
        decoded = {
            sales_table.decode_cell(v.upper_bound): v.value
            for v in exceptions
        }
        assert decoded == {("*", "P1", "*"): 7.5}

    def test_searches_at_most_the_ancestor_classes(self, tree, sales_table):
        """The paper: "we only need to search at most 2 classes"."""
        cell = sales_table.encode_cell(("S2", "P1", "f"))
        total = len(intelligent_rollup(tree, cell)) + len(
            rollup_exceptions(tree, cell)
        )
        assert total == 3  # C1, C6, C3 are the ancestors of (S2, P1, f)

    def test_missing_cell_rejected(self, tree, sales_table):
        with pytest.raises(QueryError):
            intelligent_rollup(tree, sales_table.encode_cell(("S2", "*", "s")))

    @pytest.mark.parametrize("seed", range(8))
    def test_results_share_the_start_value(self, seed):
        table = make_random_table(seed)
        t = build_qctree(table, "count")
        row = table.rows[0]
        start_value = None
        from repro.core.point_query import point_query

        start_value = point_query(t, row)
        for view in intelligent_rollup(t, row):
            assert view.value == start_value


class TestLatticeNavigation:
    def test_class_of(self, tree, sales_table):
        view = class_of(tree, sales_table.encode_cell(("S1", "*", "*")))
        assert sales_table.decode_cell(view.upper_bound) == ("S1", "*", "s")
        assert view.value == 9.0

    def test_class_of_missing_cell(self, tree, sales_table):
        assert class_of(tree, sales_table.encode_cell(("S2", "*", "s"))) is None

    def test_drilldowns_from_root(self, tree, sales_table):
        views = lattice_drilldowns(
            tree, sales_table.encode_cell(("*", "*", "*")), sales_table
        )
        decoded = {sales_table.decode_cell(v.upper_bound) for v in views}
        # One-step drill-downs from C1 reach C2..C6 (Figure 3 lattice).
        assert ("S1", "*", "s") in decoded
        assert ("S2", "P1", "f") in decoded
        assert ("*", "P1", "*") in decoded

    def test_rollups_from_specific_cell(self, tree, sales_table):
        views = lattice_rollups(
            tree, sales_table.encode_cell(("S1", "P1", "s")), sales_table
        )
        decoded = {sales_table.decode_cell(v.upper_bound) for v in views}
        # Figure 3: C5's lattice children are C4 and C6.
        assert decoded == {("S1", "*", "s"), ("*", "P1", "*")}

    def test_rollups_from_root_empty(self, tree, sales_table):
        assert lattice_rollups(
            tree, sales_table.encode_cell(("*", "*", "*")), sales_table
        ) == []


class TestDrillIntoClass:
    def test_paper_figure3_class_c3(self, tree, sales_table):
        structure = drill_into_class(
            tree, sales_table.encode_cell(("S2", "*", "f")), sales_table
        )
        decode = sales_table.decode_cell
        assert decode(structure.upper_bound) == ("S2", "P1", "f")
        assert sorted(decode(lb) for lb in structure.lower_bounds) == [
            ("*", "*", "f"), ("S2", "*", "*"),
        ]
        members = {decode(m) for m in structure.members}
        # Figure 3's drill-in shows exactly these six member cells.
        assert members == {
            ("S2", "P1", "f"), ("S2", "P1", "*"), ("*", "P1", "f"),
            ("S2", "*", "f"), ("*", "*", "f"), ("S2", "*", "*"),
        }
        assert structure.value == 9.0

    def test_members_form_intervals(self, tree, sales_table):
        structure = drill_into_class(
            tree, sales_table.encode_cell(("S2", "*", "f")), sales_table
        )
        for member in structure.members:
            assert structure.contains(member)
        assert not structure.contains(
            sales_table.encode_cell(("S1", "*", "*"))
        )

    def test_drilldown_edges_stay_inside(self, tree, sales_table):
        structure = drill_into_class(
            tree, sales_table.encode_cell(("S2", "*", "f")), sales_table
        )
        members = set(structure.members)
        for src, dst in structure.drilldown_edges:
            assert src in members and dst in members

    @pytest.mark.parametrize("seed", range(6))
    def test_member_count_matches_oracle(self, seed):
        table = make_random_table(seed, n_dims=3, cardinality=3)
        t = build_qctree(table, "count")
        from repro.cube.lattice import quotient_classes

        oracle = {
            c.upper_bound: set(c.members)
            for c in quotient_classes(table, "count")
        }
        for ub, members in list(oracle.items())[:5]:
            structure = drill_into_class(t, ub, table)
            assert set(structure.members) == members
